//! Query containment under different provenance semirings.
//!
//! `Q1 ⊆_K Q2` (every K-database `D` satisfies `Q1(D) ⊆_K Q2(D)` under the
//! natural order of `K`) is decided by searching for a head-preserving
//! homomorphism `h : Q2 → Q1`, with a side condition on the induced map over
//! atom occurrences that depends on the semiring (Green, ICDT 2009):
//!
//! * **Classical** (set semantics / `PosBool(X)`): any homomorphism
//!   (Chandra–Merlin 1977).
//! * **Bijective** (`N[X]`, `B[X]`): the atom map must be a bijection, so
//!   that evaluating `Q2` on the frozen body of `Q1` produces `Q1`'s exact
//!   witness monomial (coefficients/exponents intact). Equivalence under
//!   this mode is query isomorphism.
//! * **SurjectiveSet** (`Why(X)`, `Trio(X)`): the atom map must cover every
//!   atom of `Q1` at least once (witness *sets* must match; repeats are
//!   invisible).

use provabs_relational::{Cq, Term, Value, VarId};
use provabs_semiring::SemiringKind;
use std::collections::HashMap;

/// The homomorphism side condition for a containment check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainmentMode {
    /// Plain Chandra–Merlin homomorphism.
    Classical,
    /// The atom map must be a bijection on atom occurrences.
    Bijective,
    /// The atom map must be surjective on the contained query's atoms.
    SurjectiveSet,
}

impl ContainmentMode {
    /// The mode matching a provenance semiring. `Lin(X)` has no
    /// reverse-engineering support (§4 of the paper) and maps to `Classical`
    /// for completeness.
    pub fn for_semiring(kind: SemiringKind) -> Self {
        match kind {
            SemiringKind::NX | SemiringKind::BX => ContainmentMode::Bijective,
            SemiringKind::Why | SemiringKind::Trio => ContainmentMode::SurjectiveSet,
            SemiringKind::PosBool | SemiringKind::Lin => ContainmentMode::Classical,
        }
    }
}

/// What a homomorphism maps a variable to.
type Binding = HashMap<VarId, Term>;

/// Decides `sub ⊆_K sup` by searching for a homomorphism `sup → sub`.
pub fn contained_in(sub: &Cq, sup: &Cq, mode: ContainmentMode) -> bool {
    // Arity must agree for containment to be meaningful.
    if sub.head.len() != sup.head.len() {
        return false;
    }
    match mode {
        ContainmentMode::Bijective if sub.body.len() != sup.body.len() => return false,
        ContainmentMode::SurjectiveSet if sup.body.len() < sub.body.len() => return false,
        _ => {}
    }
    // Seed the binding with the head constraint h(sup.head[i]) = sub.head[i].
    let mut binding: Binding = HashMap::new();
    for (s_term, b_term) in sup.head.iter().zip(sub.head.iter()) {
        if !bind(s_term, b_term, &mut binding) {
            return false;
        }
    }
    let mut used = vec![0u32; sub.body.len()];
    search(sup, sub, 0, &mut binding, &mut used, mode)
}

/// Extends `binding` so that `h(from) = to`; fails on conflicts.
fn bind(from: &Term, to: &Term, binding: &mut Binding) -> bool {
    match from {
        Term::Const(c) => matches!(to, Term::Const(d) if d == c),
        Term::Var(v) => match binding.get(v) {
            Some(prev) => prev == to,
            None => {
                binding.insert(*v, to.clone());
                true
            }
        },
    }
}

fn search(
    sup: &Cq,
    sub: &Cq,
    atom_idx: usize,
    binding: &mut Binding,
    used: &mut Vec<u32>,
    mode: ContainmentMode,
) -> bool {
    if atom_idx == sup.body.len() {
        return match mode {
            ContainmentMode::Classical => true,
            ContainmentMode::Bijective => used.iter().all(|&u| u == 1),
            ContainmentMode::SurjectiveSet => used.iter().all(|&u| u >= 1),
        };
    }
    // Pruning for surjectivity: remaining sup atoms must suffice to cover
    // the uncovered sub atoms.
    if mode == ContainmentMode::SurjectiveSet {
        let uncovered = used.iter().filter(|&&u| u == 0).count();
        if sup.body.len() - atom_idx < uncovered {
            return false;
        }
    }
    let atom = &sup.body[atom_idx];
    for (ti, target) in sub.body.iter().enumerate() {
        if target.rel != atom.rel {
            continue;
        }
        if mode == ContainmentMode::Bijective && used[ti] > 0 {
            continue;
        }
        // Attempt to map atom -> target.
        let saved: Vec<(VarId, Option<Term>)> = atom
            .variables()
            .map(|v| (v, binding.get(&v).cloned()))
            .collect();
        let ok = atom
            .terms
            .iter()
            .zip(target.terms.iter())
            .all(|(f, t)| bind(f, t, binding));
        if ok {
            used[ti] += 1;
            if search(sup, sub, atom_idx + 1, binding, used, mode) {
                return true;
            }
            used[ti] -= 1;
        }
        // Roll back bindings introduced by this attempt.
        for (v, prev) in saved {
            match prev {
                Some(t) => {
                    binding.insert(v, t);
                }
                None => {
                    binding.remove(&v);
                }
            }
        }
    }
    false
}

/// Whether `q1` and `q2` are equivalent under `mode` (mutual containment).
pub fn equivalent(q1: &Cq, q2: &Cq, mode: ContainmentMode) -> bool {
    contained_in(q1, q2, mode) && contained_in(q2, q1, mode)
}

/// Whether `sub ⊊_K sup`: contained but not equivalent.
pub fn strictly_contained(sub: &Cq, sup: &Cq, mode: ContainmentMode) -> bool {
    contained_in(sub, sup, mode) && !contained_in(sup, sub, mode)
}

/// Value helper used by tests: a constant term.
pub fn const_term(v: &str) -> Term {
    Term::Const(Value::parse(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::{parse_cq, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Person", &["pid", "name", "age"]);
        s.add_relation("Hobbies", &["pid", "hobby", "source"]);
        s.add_relation("Interests", &["pid", "interest", "source"]);
        s
    }

    #[test]
    fn qreal_contained_in_qgeneral() {
        // Example 3.11: Qreal ⊆ Qgeneral (extra constant in Qreal).
        let s = schema();
        let qreal = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', w1), Interests(id, 'Music', w2)",
            &s,
        )
        .unwrap();
        let qgeneral = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', w1), Interests(id, i, w2)",
            &s,
        )
        .unwrap();
        for mode in [
            ContainmentMode::Classical,
            ContainmentMode::Bijective,
            ContainmentMode::SurjectiveSet,
        ] {
            assert!(contained_in(&qreal, &qgeneral, mode), "{mode:?}");
            assert!(strictly_contained(&qreal, &qgeneral, mode), "{mode:?}");
            assert!(!contained_in(&qgeneral, &qreal, mode), "{mode:?}");
        }
    }

    #[test]
    fn table3_minimality_example() {
        // Q(a) :- P(a,b,c), H(a,'Dance',d), I(a,'Music',e)   [row 1 of Table 3]
        // is contained in
        // Q(a) :- P(a,b,c), H(d,'Dance',e), I(a,'Music',f)   [row 3 of Table 3]
        let s = schema();
        let q1 = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(a, 'Dance', d), Interests(a, 'Music', e)",
            &s,
        )
        .unwrap();
        let q3 = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(d, 'Dance', e), Interests(a, 'Music', f)",
            &s,
        )
        .unwrap();
        assert!(strictly_contained(&q1, &q3, ContainmentMode::Bijective));
    }

    #[test]
    fn incomparable_queries() {
        // Qreal vs Qfalse1 differ in the Hobbies constant: incomparable.
        let s = schema();
        let qreal = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', w1), Interests(id, 'Music', w2)",
            &s,
        )
        .unwrap();
        let qfalse1 = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Trips', w1), Interests(id, 'Music', w2)",
            &s,
        )
        .unwrap();
        assert!(!contained_in(&qreal, &qfalse1, ContainmentMode::Bijective));
        assert!(!contained_in(&qfalse1, &qreal, ContainmentMode::Bijective));
    }

    #[test]
    fn bijective_rejects_folding_but_classical_allows() {
        let s = schema();
        // Q2 has a redundant second atom that folds onto the first.
        let q1 = parse_cq("Q(x) :- Hobbies(x, h, w)", &s).unwrap();
        let q2 = parse_cq("Q(x) :- Hobbies(x, h, w), Hobbies(x, h2, w2)", &s).unwrap();
        // Classically q1 ⊆ q2 (hom q2→q1 folds both atoms onto one) and
        // q2 ⊆ q1 (hom q1→q2), i.e. they are classically equivalent.
        assert!(contained_in(&q1, &q2, ContainmentMode::Classical));
        assert!(contained_in(&q2, &q1, ContainmentMode::Classical));
        assert!(equivalent(&q1, &q2, ContainmentMode::Classical));
        // Under N[X] they are incomparable: atom counts differ.
        assert!(!contained_in(&q1, &q2, ContainmentMode::Bijective));
        assert!(!contained_in(&q2, &q1, ContainmentMode::Bijective));
        // Under Why(X): hom q2→q1 covers the single atom — q1 ⊆ q2 holds;
        // hom q1→q2 cannot cover both atoms with one.
        assert!(contained_in(&q1, &q2, ContainmentMode::SurjectiveSet));
        assert!(!contained_in(&q2, &q1, ContainmentMode::SurjectiveSet));
    }

    #[test]
    fn head_must_be_preserved() {
        let s = schema();
        let q1 = parse_cq("Q(x) :- Hobbies(x, h, w)", &s).unwrap();
        let q2 = parse_cq("Q(h) :- Hobbies(x, h, w)", &s).unwrap();
        assert!(!contained_in(&q1, &q2, ContainmentMode::Classical));
        assert!(!contained_in(&q2, &q1, ContainmentMode::Classical));
    }

    #[test]
    fn equivalence_is_isomorphism_for_bijective() {
        let s = schema();
        let q1 = parse_cq("Q(x) :- Hobbies(x, h, w), Interests(x, i, w)", &s).unwrap();
        let q2 = parse_cq("Q(y) :- Interests(y, a, b), Hobbies(y, c, b)", &s).unwrap();
        assert!(equivalent(&q1, &q2, ContainmentMode::Bijective));
    }

    #[test]
    fn mode_for_semiring_mapping() {
        assert_eq!(
            ContainmentMode::for_semiring(SemiringKind::NX),
            ContainmentMode::Bijective
        );
        assert_eq!(
            ContainmentMode::for_semiring(SemiringKind::Why),
            ContainmentMode::SurjectiveSet
        );
        assert_eq!(
            ContainmentMode::for_semiring(SemiringKind::PosBool),
            ContainmentMode::Classical
        );
    }

    #[test]
    fn arity_mismatch_is_never_contained() {
        let s = schema();
        let q1 = parse_cq("Q(x) :- Hobbies(x, h, w)", &s).unwrap();
        let q2 = parse_cq("Q(x, h) :- Hobbies(x, h, w)", &s).unwrap();
        assert!(!contained_in(&q1, &q2, ContainmentMode::Classical));
    }
}
