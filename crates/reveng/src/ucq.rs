//! UCQ and aggregate-query extensions (Table 4, orange/green cells).
//!
//! A UCQ is consistent w.r.t. a K-example if each row is derived by some
//! disjunct: we enumerate set partitions of the rows, find the consistent-CQ
//! frontier of each group, and take one CQ per group. The paper's
//! adjustments are honoured: a UCQ is *disconnected* if it contains a
//! disconnected CQ (line 13), and *trivial* UCQs — those with a
//! variable-free disjunct, e.g. the plain union of the ground rows — can be
//! excluded (line 20 / Def. 3.10 adjustment).

use crate::canonical::canonical_key;
use crate::cim::minimal_queries;
use crate::containment::{contained_in, ContainmentMode};
use crate::most_specific::{find_consistent_queries, RevOptions};
use provabs_relational::{ConcreteRow, Cq, Tuple, Ucq};
use provabs_semiring::{AggOp, AggValue};
use std::collections::BTreeMap;

/// Options for [`find_consistent_ucqs`].
#[derive(Debug, Clone)]
pub struct UcqOptions {
    /// CQ-level options applied per row group.
    pub rev: RevOptions,
    /// Drop UCQs containing a variable-free disjunct (the paper's trivial
    /// queries).
    pub exclude_trivial: bool,
    /// Cap on the number of UCQs materialized.
    pub max_ucqs: usize,
}

impl Default for UcqOptions {
    fn default() -> Self {
        Self {
            rev: RevOptions::default(),
            exclude_trivial: true,
            max_ucqs: 10_000,
        }
    }
}

/// Enumerates consistent UCQs: one consistent CQ per block of a set
/// partition of the rows. Deduplicated by the sorted canonical keys of the
/// disjuncts.
pub fn find_consistent_ucqs(rows: &[ConcreteRow], opts: &UcqOptions) -> Vec<Ucq> {
    let mut out: BTreeMap<String, Ucq> = BTreeMap::new();
    if rows.is_empty() {
        return Vec::new();
    }
    let n = rows.len();
    // Enumerate set partitions of row indexes via restricted growth strings.
    let mut rgs = vec![0usize; n];
    partition_rec(rows, &mut rgs, 1, 1, opts, &mut out);
    out.into_values().collect()
}

fn partition_rec(
    rows: &[ConcreteRow],
    rgs: &mut Vec<usize>,
    i: usize,
    max_block: usize,
    opts: &UcqOptions,
    out: &mut BTreeMap<String, Ucq>,
) {
    if out.len() >= opts.max_ucqs {
        return;
    }
    if i == rgs.len() {
        realize_partition(rows, rgs, max_block, opts, out);
        return;
    }
    for b in 0..=max_block {
        rgs[i] = b;
        partition_rec(rows, rgs, i + 1, max_block.max(b + 1), opts, out);
    }
}

fn realize_partition(
    rows: &[ConcreteRow],
    rgs: &[usize],
    num_blocks: usize,
    opts: &UcqOptions,
    out: &mut BTreeMap<String, Ucq>,
) {
    // Frontier per block.
    let mut frontiers: Vec<Vec<Cq>> = Vec::with_capacity(num_blocks);
    for b in 0..num_blocks {
        let group: Vec<ConcreteRow> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| rgs[*i] == b)
            .map(|(_, r)| r.clone())
            .collect();
        let mut frontier = find_consistent_queries(&group, &opts.rev);
        if opts.exclude_trivial {
            frontier.retain(Cq::has_variable);
        }
        if frontier.is_empty() {
            return; // this partition admits no consistent UCQ
        }
        frontiers.push(frontier);
    }
    // One CQ per block (cartesian product).
    let mut choice: Vec<Cq> = frontiers.iter().map(|f| f[0].clone()).collect();
    product(&frontiers, 0, &mut choice, &mut |disjuncts| {
        if out.len() >= opts.max_ucqs {
            return;
        }
        // Dedup disjuncts within the UCQ and key by sorted canonical keys.
        let mut keyed: Vec<(String, Cq)> = disjuncts
            .iter()
            .map(|q| (canonical_key(q), q.clone()))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.dedup_by(|a, b| a.0 == b.0);
        let key = keyed
            .iter()
            .map(|(k, _)| k.as_str())
            .collect::<Vec<_>>()
            .join("|");
        out.entry(key).or_insert_with(|| Ucq {
            disjuncts: keyed.into_iter().map(|(_, q)| q).collect(),
        });
    });
}

fn product(frontiers: &[Vec<Cq>], i: usize, choice: &mut Vec<Cq>, f: &mut impl FnMut(&[Cq])) {
    if i == frontiers.len() {
        f(choice);
        return;
    }
    for q in &frontiers[i] {
        choice[i] = q.clone();
        product(frontiers, i + 1, choice, f);
    }
}

/// UCQ containment `u1 ⊆ u2`: every disjunct of `u1` is contained in some
/// disjunct of `u2` (exact for classical semantics — Sagiv–Yannakakis; an
/// approximation the paper also relies on for the annotated orders).
pub fn ucq_contained_in(u1: &Ucq, u2: &Ucq, mode: ContainmentMode) -> bool {
    u1.disjuncts
        .iter()
        .all(|d1| u2.disjuncts.iter().any(|d2| contained_in(d1, d2, mode)))
}

/// The CIM UCQs of a consistent-UCQ frontier: connected (no disconnected
/// disjunct), inclusion-minimal, non-trivial handled upstream.
pub fn cim_ucqs(frontier: &[Ucq], mode: ContainmentMode) -> Vec<Ucq> {
    // One representative per equivalence class.
    let mut reps: Vec<Ucq> = Vec::new();
    for u in frontier {
        if !reps
            .iter()
            .any(|r| ucq_contained_in(r, u, mode) && ucq_contained_in(u, r, mode))
        {
            reps.push(u.clone());
        }
    }
    reps.iter()
        .filter(|u| {
            !reps
                .iter()
                .any(|other| ucq_contained_in(other, u, mode) && !ucq_contained_in(u, other, mode))
        })
        .filter(|u| u.is_connected())
        .cloned()
        .collect()
}

/// An aggregate conjunctive query: a CQ whose last head column is aggregated
/// with `op` (§3.4 — aggregation over the head variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCq {
    /// The underlying CQ; the final head term carries the aggregated value.
    pub cq: Cq,
    /// The aggregation monoid.
    pub op: AggOp,
}

/// Finds consistent aggregate queries for grouped aggregate outputs: each
/// `(group, agg)` pair contributes one row per tensor term, with the output
/// extended by the tensor's value column; the CQ machinery then requires the
/// head to also produce the aggregated attribute.
pub fn find_consistent_agg_queries(
    groups: &[(Tuple, AggValue)],
    resolve: impl Fn(&Tuple, &provabs_semiring::Monomial) -> Option<ConcreteRow>,
    opts: &RevOptions,
) -> Vec<AggCq> {
    if groups.is_empty() {
        return Vec::new();
    }
    let agg_op = groups[0].1.op;
    let mut rows: Vec<ConcreteRow> = Vec::new();
    for (group, agg) in groups {
        for term in &agg.terms {
            let extended: Tuple = group
                .values()
                .iter()
                .cloned()
                .chain([provabs_relational::Value::Int(term.value)])
                .collect();
            match resolve(&extended, &term.monomial) {
                Some(row) => rows.push(row),
                None => return Vec::new(),
            }
        }
    }
    find_consistent_queries(&rows, opts)
        .into_iter()
        .map(|cq| AggCq { cq, op: agg_op })
        .collect()
}

/// Convenience: minimal CQs of a frontier (re-export for Algorithm 1's
/// UCQ/AGG variants).
pub fn minimal_cqs(frontier: &[Cq], mode: ContainmentMode) -> Vec<Cq> {
    minimal_queries(frontier, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::{Database, KExample};
    use provabs_semiring::Monomial;

    fn db2() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["a"]);
        db.insert_str(r, "r1", &["1", "7"]);
        db.insert_str(r, "r2", &["2", "7"]);
        db.insert_str(s, "s1", &["3"]);
        db.insert_str(s, "s2", &["4"]);
        db.build_indexes();
        db
    }

    fn rows(db: &Database, pairs: &[(&str, &[&str])]) -> Vec<ConcreteRow> {
        KExample::new(pairs.iter().map(|(o, annots)| {
            (
                Tuple::parse(&[o]),
                Monomial::from_annots(annots.iter().map(|a| db.annotations().get(a).unwrap())),
            )
        }))
        .resolve(db)
        .unwrap()
    }

    #[test]
    fn heterogeneous_rows_need_a_union() {
        let db = db2();
        // Rows from different relations: no CQ is consistent, but the UCQ
        // Q(x) :- R(x, y) ∪ Q(x) :- S(x) is.
        let rs = rows(
            &db,
            &[
                ("1", &["r1"]),
                ("2", &["r2"]),
                ("3", &["s1"]),
                ("4", &["s2"]),
            ],
        );
        assert!(find_consistent_queries(&rs, &RevOptions::default()).is_empty());
        let ucqs = find_consistent_ucqs(&rs, &UcqOptions::default());
        assert!(!ucqs.is_empty());
        assert!(ucqs.iter().any(|u| u.disjuncts.len() == 2));
        // All surviving UCQs are non-trivial.
        assert!(ucqs.iter().all(Ucq::is_nontrivial));
    }

    #[test]
    fn exclude_trivial_removes_ground_unions() {
        let db = db2();
        // A single row admits only the ground query as a CQ; with
        // exclude_trivial the partition has no realization.
        let rs = rows(&db, &[("1", &["r1"])]);
        let with = find_consistent_ucqs(&rs, &UcqOptions::default());
        assert!(with.is_empty());
        let without = find_consistent_ucqs(
            &rs,
            &UcqOptions {
                exclude_trivial: false,
                ..Default::default()
            },
        );
        assert!(!without.is_empty());
    }

    #[test]
    fn ucq_containment_disjunctwise() {
        let db = db2();
        let schema = db.schema();
        let narrow = provabs_relational::parse_cq("Q(x) :- R(x, 7)", schema).unwrap();
        let wide = provabs_relational::parse_cq("Q(x) :- R(x, y)", schema).unwrap();
        let u1 = Ucq::single(narrow);
        let u2 = Ucq::single(wide);
        assert!(ucq_contained_in(&u1, &u2, ContainmentMode::Bijective));
        assert!(!ucq_contained_in(&u2, &u1, ContainmentMode::Bijective));
        let cim = cim_ucqs(&[u1.clone(), u2], ContainmentMode::Bijective);
        assert_eq!(cim.len(), 1);
        assert_eq!(cim[0], u1);
    }

    #[test]
    fn aggregate_queries_from_tensors() {
        let mut db = Database::new();
        let person = db.add_relation("Person", &["pid", "age"]);
        db.insert_str(person, "p1", &["1", "27"]);
        db.insert_str(person, "p2", &["2", "31"]);
        db.build_indexes();
        // MAX(age) over all persons, one group: tensors (p1)⊗27 + (p2)⊗31.
        let mut agg = AggValue::new(AggOp::Max);
        agg.push(
            Monomial::from_annots([db.annotations().get("p1").unwrap()]),
            27,
        );
        agg.push(
            Monomial::from_annots([db.annotations().get("p2").unwrap()]),
            31,
        );
        let groups = vec![(Tuple::new([]), agg)];
        let found = find_consistent_agg_queries(
            &groups,
            |output, monomial| ConcreteRow::resolve(&db, output, &monomial.occurrences()),
            &RevOptions::default(),
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].op, AggOp::Max);
        // Head should expose the age column as a variable.
        assert_eq!(found[0].cq.head.len(), 1);
        assert!(found[0].cq.head[0].as_var().is_some());
    }
}
