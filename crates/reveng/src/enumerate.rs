//! Exhaustive enumeration of *all* consistent queries (small inputs only).
//!
//! The frontier of [`crate::find_consistent_queries`] contains only the
//! most-specific query per alignment. For reproducing the paper's Table 3
//! ("a total of 14 consistent queries ... 3 connected ... 2 CIM") we also
//! need every generalization that is still consistent. For a fixed
//! alignment, the consistent queries are exactly the assignments of
//!
//! * a constant to a body position whose aligned value vector is uniform, or
//! * a variable, where two positions may share a variable iff their vectors
//!   are equal,
//!
//! together with a head assignment mapping each output column to its
//! constant (uniform columns) or to one of the variable blocks carrying the
//! column's vector. This module enumerates all of them, deduplicated up to
//! isomorphism, with a hard cap.

use crate::alignment::for_each_alignment;
use crate::canonical::{canonical_cq, canonical_key};
use crate::most_specific::RevOptions;
use provabs_relational::{Atom, ConcreteRow, Cq, Term, Value, VarId};
use std::collections::{BTreeMap, HashMap};

/// Enumerates all consistent queries w.r.t. the concrete rows, up to
/// isomorphism, capped at `max_queries` (a cap hit makes the result a
/// lower approximation). Only supports exponent-keeping semirings
/// (`N[X]`/`B[X]`); the alignment cap comes from `opts`.
pub fn enumerate_consistent_queries(
    rows: &[ConcreteRow],
    opts: &RevOptions,
    max_queries: usize,
) -> Vec<Cq> {
    let mut out: BTreeMap<String, Cq> = BTreeMap::new();
    if rows.is_empty()
        || rows
            .iter()
            .any(|r| r.output.arity() != rows[0].output.arity())
    {
        return Vec::new();
    }
    for_each_alignment(rows, opts.max_alignments, |alignment| {
        if out.len() >= max_queries {
            return;
        }
        enumerate_alignment(rows, &alignment.per_row, max_queries, &mut out);
    });
    out.into_values().collect()
}

/// A position of the query body: (slot, column).
type Pos = (usize, usize);

fn enumerate_alignment(
    rows: &[ConcreteRow],
    per_row: &[Vec<usize>],
    max_queries: usize,
    out: &mut BTreeMap<String, Cq>,
) {
    let n_rows = rows.len();
    // Group body positions by aligned value vector.
    let mut classes: HashMap<Vec<Value>, Vec<Pos>> = HashMap::new();
    for (slot, occ) in rows[0].occurrences.iter().enumerate() {
        let arity = occ.2.arity();
        for col in 0..arity {
            let vec: Vec<Value> = (0..n_rows)
                .map(|j| rows[j].occurrences[per_row[j][slot]].2[col].clone())
                .collect();
            classes.entry(vec).or_default().push((slot, col));
        }
    }
    let class_list: Vec<(Vec<Value>, Vec<Pos>, bool)> = {
        let mut v: Vec<_> = classes
            .into_iter()
            .map(|(vec, poss)| {
                let uniform = vec.iter().all(|x| x == &vec[0]);
                (vec, poss, uniform)
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    // Head vectors.
    let head_vecs: Vec<Vec<Value>> = (0..rows[0].output.arity())
        .map(|col| (0..n_rows).map(|j| rows[j].output[col].clone()).collect())
        .collect();
    // Recursive choice per class: a "grouping" assigns each position either
    // Const (uniform classes only) or a block id; blocks are non-crossing
    // set-partition blocks within the class.
    let mut assignment: HashMap<Pos, Term> = HashMap::new();
    let mut blocks_by_vec: HashMap<Vec<Value>, Vec<VarId>> = HashMap::new();
    let mut next_var = 0u32;
    choose_class(
        rows,
        per_row,
        &class_list,
        0,
        &head_vecs,
        &mut assignment,
        &mut blocks_by_vec,
        &mut next_var,
        max_queries,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn choose_class(
    rows: &[ConcreteRow],
    per_row: &[Vec<usize>],
    classes: &[(Vec<Value>, Vec<Pos>, bool)],
    ci: usize,
    head_vecs: &[Vec<Value>],
    assignment: &mut HashMap<Pos, Term>,
    blocks_by_vec: &mut HashMap<Vec<Value>, Vec<VarId>>,
    next_var: &mut u32,
    max_queries: usize,
    out: &mut BTreeMap<String, Cq>,
) {
    if out.len() >= max_queries {
        return;
    }
    if ci == classes.len() {
        emit_heads(
            rows,
            per_row,
            head_vecs,
            assignment,
            blocks_by_vec,
            out,
            max_queries,
        );
        return;
    }
    let (vec, positions, uniform) = &classes[ci];
    // Enumerate: subset of const positions (uniform only) + set partition of
    // the remaining positions.
    let n = positions.len();
    let const_masks: Vec<u32> = if *uniform {
        (0..(1u32 << n)).collect()
    } else {
        vec![0]
    };
    for mask in const_masks {
        let mut var_positions: Vec<Pos> = Vec::new();
        for (i, p) in positions.iter().enumerate() {
            if mask & (1 << i) != 0 {
                assignment.insert(*p, Term::Const(vec[0].clone()));
            } else {
                var_positions.push(*p);
            }
        }
        // All set partitions of var_positions.
        partitions(&var_positions, &mut |blocks: &[Vec<Pos>]| {
            let saved_next = *next_var;
            let mut block_ids = Vec::with_capacity(blocks.len());
            for block in blocks {
                let var = VarId(*next_var);
                *next_var += 1;
                block_ids.push(var);
                for p in block {
                    assignment.insert(*p, Term::Var(var));
                }
            }
            blocks_by_vec.insert(vec.clone(), block_ids);
            choose_class(
                rows,
                per_row,
                classes,
                ci + 1,
                head_vecs,
                assignment,
                blocks_by_vec,
                next_var,
                max_queries,
                out,
            );
            blocks_by_vec.remove(vec);
            *next_var = saved_next;
        });
        for (i, p) in positions.iter().enumerate() {
            if mask & (1 << i) != 0 {
                assignment.remove(p);
            }
        }
    }
}

fn emit_heads(
    rows: &[ConcreteRow],
    per_row: &[Vec<usize>],
    head_vecs: &[Vec<Value>],
    assignment: &HashMap<Pos, Term>,
    blocks_by_vec: &HashMap<Vec<Value>, Vec<VarId>>,
    out: &mut BTreeMap<String, Cq>,
    max_queries: usize,
) {
    // Per head column, the candidate terms.
    let mut options: Vec<Vec<Term>> = Vec::with_capacity(head_vecs.len());
    for vec in head_vecs {
        let uniform = vec.iter().all(|x| x == &vec[0]);
        let mut opts: Vec<Term> = Vec::new();
        if uniform {
            opts.push(Term::Const(vec[0].clone()));
        }
        if let Some(blocks) = blocks_by_vec.get(vec) {
            opts.extend(blocks.iter().map(|v| Term::Var(*v)));
        }
        if opts.is_empty() {
            return; // head column unrealizable under this grouping
        }
        options.push(opts);
    }
    // Cartesian product over head choices.
    let mut head: Vec<Term> = options.iter().map(|o| o[0].clone()).collect();
    head_product(&options, 0, &mut head, &mut |h| {
        if out.len() >= max_queries {
            return;
        }
        let body: Vec<Atom> = (0..rows[0].occurrences.len())
            .map(|slot| {
                let rel = rows[0].occurrences[slot].1;
                let arity = rows[0].occurrences[slot].2.arity();
                Atom {
                    rel,
                    terms: (0..arity)
                        .map(|col| assignment[&(slot, col)].clone())
                        .collect(),
                }
            })
            .collect();
        let q = canonical_cq(&Cq::new(h.to_vec(), body));
        out.entry(canonical_key(&q)).or_insert(q);
    });
    let _ = per_row;
}

fn head_product(
    options: &[Vec<Term>],
    i: usize,
    head: &mut Vec<Term>,
    f: &mut impl FnMut(&[Term]),
) {
    if i == options.len() {
        f(head);
        return;
    }
    for opt in &options[i] {
        head[i] = opt.clone();
        head_product(options, i + 1, head, f);
    }
}

/// Enumerates all set partitions of `items`, calling `f` with each list of
/// blocks. Uses the standard restricted-growth recursion.
fn partitions<T: Clone>(items: &[T], f: &mut impl FnMut(&[Vec<T>])) {
    let mut blocks: Vec<Vec<T>> = Vec::new();
    partition_rec(items, 0, &mut blocks, f);
}

fn partition_rec<T: Clone>(
    items: &[T],
    i: usize,
    blocks: &mut Vec<Vec<T>>,
    f: &mut impl FnMut(&[Vec<T>]),
) {
    if i == items.len() {
        f(blocks);
        return;
    }
    for b in 0..blocks.len() {
        blocks[b].push(items[i].clone());
        partition_rec(items, i + 1, blocks, f);
        blocks[b].pop();
    }
    blocks.push(vec![items[i].clone()]);
    partition_rec(items, i + 1, blocks, f);
    blocks.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cim::cim_queries;
    use crate::containment::ContainmentMode;
    use provabs_relational::{parse_cq, Database, KExample, Tuple};
    use provabs_semiring::Monomial;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "7"]);
        db.insert_str(r, "t2", &["2", "7"]);
        db.build_indexes();
        db
    }

    fn rows(db: &Database, pairs: &[(&str, &[&str])]) -> Vec<ConcreteRow> {
        KExample::new(pairs.iter().map(|(o, annots)| {
            (
                Tuple::parse(&[o]),
                Monomial::from_annots(annots.iter().map(|a| db.annotations().get(a).unwrap())),
            )
        }))
        .resolve(db)
        .unwrap()
    }

    #[test]
    fn enumerates_generalization_lattice() {
        let db = tiny_db();
        // Rows (1, t1), (2, t2): t1=(1,7), t2=(2,7).
        // Position (0,0) has vector (1,2) → must be a variable = head.
        // Position (0,1) has vector (7,7) → 'const 7' or a fresh variable.
        // Queries: Q(x) :- R(x, 7) and Q(x) :- R(x, y). Exactly 2.
        let rs = rows(&db, &[("1", &["t1"]), ("2", &["t2"])]);
        let all = enumerate_consistent_queries(&rs, &RevOptions::default(), 1000);
        assert_eq!(all.len(), 2);
        let schema = db.schema();
        let q_const = parse_cq("Q(x) :- R(x, 7)", schema).unwrap();
        let q_var = parse_cq("Q(x) :- R(x, y)", schema).unwrap();
        let keys: Vec<String> = all.iter().map(canonical_key).collect();
        assert!(keys.contains(&canonical_key(&q_const)));
        assert!(keys.contains(&canonical_key(&q_var)));
        // The CIM filter keeps only the specific one.
        let cim = cim_queries(&all, ContainmentMode::Bijective);
        assert_eq!(cim.len(), 1);
        assert_eq!(canonical_key(&cim[0]), canonical_key(&q_const));
    }

    #[test]
    fn shared_vector_positions_can_split() {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "1"]);
        db.insert_str(r, "t2", &["2", "2"]);
        db.build_indexes();
        // Rows (1, t1), (2, t2): both positions have vector (1,2).
        // Consistent queries: Q(x) :- R(x, x) [shared block], and the two
        // splits Q(x) :- R(x, y) and Q(x) :- R(y, x) (the head can take
        // either block).
        let rs = rows(&db, &[("1", &["t1"]), ("2", &["t2"])]);
        let all = enumerate_consistent_queries(&rs, &RevOptions::default(), 1000);
        assert_eq!(all.len(), 3);
        for text in ["Q(x) :- R(x, x)", "Q(x) :- R(x, y)", "Q(x) :- R(y, x)"] {
            let expect = canonical_key(&parse_cq(text, db.schema()).unwrap());
            assert!(
                all.iter().any(|q| canonical_key(q) == expect),
                "missing {text}"
            );
        }
    }

    #[test]
    fn frontier_is_subset_of_enumeration() {
        let db = tiny_db();
        let rs = rows(&db, &[("1", &["t1"]), ("2", &["t2"])]);
        let frontier = crate::find_consistent_queries(&rs, &RevOptions::default());
        let all = enumerate_consistent_queries(&rs, &RevOptions::default(), 1000);
        let all_keys: Vec<String> = all.iter().map(canonical_key).collect();
        for q in &frontier {
            assert!(all_keys.contains(&canonical_key(q)));
        }
    }

    #[test]
    fn cap_limits_output() {
        let db = tiny_db();
        let rs = rows(&db, &[("1", &["t1"]), ("2", &["t2"])]);
        let capped = enumerate_consistent_queries(&rs, &RevOptions::default(), 1);
        assert_eq!(capped.len(), 1);
    }
}
