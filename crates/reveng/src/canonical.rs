//! Canonical forms of conjunctive queries up to isomorphism.
//!
//! Two CQs are isomorphic iff they are equal after canonicalization: atoms
//! are sorted by an invariant key, residual ties are resolved by trying the
//! permutations of each tie group and keeping the lexicographically smallest
//! rendering, and variables are renumbered in first-occurrence order (head
//! first). Under `N[X]` semantics, query equivalence *is* isomorphism, so
//! canonical keys double as equivalence keys for frontier deduplication.

use provabs_relational::{Cq, Term, VarId};
use std::collections::HashMap;

/// A total rendering of a CQ with variables replaced by their
/// first-occurrence index (head first, then atoms in the given order).
fn encode(cq: &Cq, atom_order: &[usize]) -> String {
    let mut var_ids: HashMap<VarId, usize> = HashMap::new();
    let mut out = String::new();
    let mut push_term = |t: &Term, out: &mut String| match t {
        Term::Const(c) => {
            out.push('c');
            out.push_str(&c.to_string());
        }
        Term::Var(v) => {
            let next = var_ids.len();
            let id = *var_ids.entry(*v).or_insert(next);
            out.push('v');
            out.push_str(&id.to_string());
        }
    };
    out.push('H');
    for t in &cq.head {
        push_term(t, &mut out);
        out.push(',');
    }
    for &i in atom_order {
        let a = &cq.body[i];
        out.push('A');
        out.push_str(&a.rel.0.to_string());
        out.push('(');
        for t in &a.terms {
            push_term(t, &mut out);
            out.push(',');
        }
        out.push(')');
    }
    out
}

/// An isomorphism-invariant key for one atom, used to pre-sort atoms before
/// permutation search: relation, and per position either the constant or a
/// variable signature (number of occurrences of the variable in the whole
/// query and whether it appears in the head).
fn atom_invariant(cq: &Cq, atom_idx: usize) -> String {
    let mut occ: HashMap<VarId, usize> = HashMap::new();
    for a in &cq.body {
        for v in a.variables() {
            *occ.entry(v).or_insert(0) += 1;
        }
    }
    let head_vars: Vec<VarId> = cq.head.iter().filter_map(Term::as_var).collect();
    let a = &cq.body[atom_idx];
    let mut s = format!("R{}(", a.rel.0);
    for t in &a.terms {
        match t {
            Term::Const(c) => s.push_str(&format!("c{c},")),
            Term::Var(v) => {
                let h = head_vars.iter().filter(|x| **x == *v).count();
                s.push_str(&format!("v[o{},h{}],", occ[v], h));
            }
        }
    }
    s.push(')');
    s
}

/// Computes the canonical key of `cq`: a string equal for exactly the CQs
/// isomorphic to `cq` (same relations, same constant placement, same
/// variable-sharing pattern, same head).
///
/// Complexity: product of factorials of atom tie-group sizes; tie groups are
/// atoms with identical invariant keys, which stay tiny for the paper's
/// workloads (worst case: TPC-H Q21's triple self-join → 3! permutations).
pub fn canonical_key(cq: &Cq) -> String {
    // Group atoms by invariant.
    let n = cq.body.len();
    let mut order: Vec<usize> = (0..n).collect();
    let invariants: Vec<String> = (0..n).map(|i| atom_invariant(cq, i)).collect();
    order.sort_by(|&a, &b| invariants[a].cmp(&invariants[b]).then(a.cmp(&b)));
    // Identify tie groups.
    let mut groups: Vec<(usize, usize)> = Vec::new(); // [start, end) in `order`
    let mut start = 0;
    for i in 1..=n {
        if i == n || invariants[order[i]] != invariants[order[start]] {
            groups.push((start, i));
            start = i;
        }
    }
    // Search over permutations within tie groups for the minimal encoding.
    let mut best: Option<String> = None;
    permute_groups(cq, &mut order, &groups, 0, &mut best);
    best.unwrap_or_else(|| encode(cq, &order))
}

fn permute_groups(
    cq: &Cq,
    order: &mut Vec<usize>,
    groups: &[(usize, usize)],
    g: usize,
    best: &mut Option<String>,
) {
    if g == groups.len() {
        let enc = encode(cq, order);
        if best.as_ref().is_none_or(|b| enc < *b) {
            *best = Some(enc);
        }
        return;
    }
    let (s, e) = groups[g];
    if e - s <= 1 {
        permute_groups(cq, order, groups, g + 1, best);
        return;
    }
    // Heap's-algorithm-free simple recursion over the group's permutations.
    let mut idxs: Vec<usize> = order[s..e].to_vec();
    permute_slice(&mut idxs, 0, &mut |perm| {
        order[s..e].copy_from_slice(perm);
        permute_groups(cq, &mut order.clone(), groups, g + 1, best);
    });
}

fn permute_slice(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute_slice(v, k + 1, f);
        v.swap(k, i);
    }
}

/// Rewrites `cq` into its canonical form: atoms in canonical order and
/// variables renumbered `v0, v1, ...` in first-occurrence order.
pub fn canonical_cq(cq: &Cq) -> Cq {
    // Recover the atom order realizing the canonical key by re-running the
    // search and keeping the best order.
    let n = cq.body.len();
    let mut order: Vec<usize> = (0..n).collect();
    let invariants: Vec<String> = (0..n).map(|i| atom_invariant(cq, i)).collect();
    order.sort_by(|&a, &b| invariants[a].cmp(&invariants[b]).then(a.cmp(&b)));
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..=n {
        if i == n || invariants[order[i]] != invariants[order[start]] {
            groups.push((start, i));
            start = i;
        }
    }
    let mut best: Option<(String, Vec<usize>)> = None;
    search_best_order(cq, &mut order, &groups, 0, &mut best);
    let order = best.map(|(_, o)| o).unwrap_or(order);
    // Renumber variables in first-occurrence order (head first).
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    let mut next = 0u32;
    let mut note = |t: &Term, map: &mut HashMap<VarId, VarId>| {
        if let Term::Var(v) = t {
            map.entry(*v).or_insert_with(|| {
                let id = VarId(next);
                next += 1;
                id
            });
        }
    };
    for t in &cq.head {
        note(t, &mut map);
    }
    for &i in &order {
        for t in &cq.body[i].terms {
            note(t, &mut map);
        }
    }
    let reordered = Cq {
        head_name: cq.head_name.clone(),
        head: cq.head.clone(),
        body: order.iter().map(|&i| cq.body[i].clone()).collect(),
    };
    reordered.rename_vars(&map)
}

fn search_best_order(
    cq: &Cq,
    order: &mut Vec<usize>,
    groups: &[(usize, usize)],
    g: usize,
    best: &mut Option<(String, Vec<usize>)>,
) {
    if g == groups.len() {
        let enc = encode(cq, order);
        if best.as_ref().is_none_or(|(b, _)| enc < *b) {
            *best = Some((enc, order.clone()));
        }
        return;
    }
    let (s, e) = groups[g];
    if e - s <= 1 {
        search_best_order(cq, order, groups, g + 1, best);
        return;
    }
    let mut idxs: Vec<usize> = order[s..e].to_vec();
    permute_slice(&mut idxs, 0, &mut |perm| {
        let mut o2 = order.clone();
        o2[s..e].copy_from_slice(perm);
        search_best_order(cq, &mut o2, groups, g + 1, best);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::{parse_cq, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Person", &["pid", "name", "age"]);
        s.add_relation("Hobbies", &["pid", "hobby", "source"]);
        s.add_relation("Interests", &["pid", "interest", "source"]);
        s
    }

    #[test]
    fn isomorphic_queries_share_keys() {
        let s = schema();
        let q1 = parse_cq("Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', w)", &s).unwrap();
        // Same query with renamed variables and reordered atoms.
        let q2 = parse_cq("Q(x) :- Hobbies(x, 'Dance', ww), Person(x, nn, aa)", &s).unwrap();
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
        assert_eq!(canonical_cq(&q1), canonical_cq(&q2));
    }

    #[test]
    fn different_constant_placement_distinguished() {
        let s = schema();
        let q1 = parse_cq("Q(id) :- Hobbies(id, 'Dance', w)", &s).unwrap();
        let q2 = parse_cq("Q(id) :- Hobbies(id, 'Trips', w)", &s).unwrap();
        let q3 = parse_cq("Q(id) :- Hobbies(id, h, w)", &s).unwrap();
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
        assert_ne!(canonical_key(&q1), canonical_key(&q3));
    }

    #[test]
    fn variable_sharing_pattern_distinguished() {
        let s = schema();
        // Shared source variable vs distinct sources.
        let q1 = parse_cq("Q(id) :- Hobbies(id, h, w), Interests(id, i, w)", &s).unwrap();
        let q2 = parse_cq("Q(id) :- Hobbies(id, h, w1), Interests(id, i, w2)", &s).unwrap();
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn self_join_ties_resolved() {
        let s = schema();
        // Two Hobbies atoms differing only in variable sharing with head.
        let q1 = parse_cq("Q(x) :- Hobbies(x, a, b), Hobbies(y, a, c)", &s).unwrap();
        let q2 = parse_cq("Q(x) :- Hobbies(y, a, c), Hobbies(x, a, b)", &s).unwrap();
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn canonical_cq_renumbers_head_first() {
        let s = schema();
        let q = parse_cq("Q(z) :- Person(z, y, x)", &s).unwrap();
        let c = canonical_cq(&q);
        assert_eq!(c.head, vec![provabs_relational::Term::Var(VarId(0))]);
    }
}
