//! Model-checked service scenarios: admission control and the degraded-mode
//! flip, swept across every schedule the `provabs-sched` explorer
//! enumerates.
//!
//! The admission queue, the writer state, and the service counters are all
//! built on the instrumented shims, so each lock acquisition and counter
//! bump is a scheduling point — the sweep proves the admission decisions
//! are linearizable with the queue state (a rejection happens only in a
//! state where the queue really was full) and that the degraded flip is
//! atomic with the health report in every interleaving.

use provabs_relational::storage::{Fault, FaultyVfs, SharedVfs};
use provabs_relational::{Database, Delta, Tuple};
use provabs_sched as sched;
use provabsd::{HealthStatus, Provabsd, ServiceConfig, ServiceError};
use sched::Config;
use std::sync::{Arc, Mutex};

fn seed_db() -> Database {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    db.insert_str(r, "t0", &["0", "x"]);
    db.build_indexes();
    db
}

fn ins(db: &Database, label: &str, a: &str) -> Delta {
    let r = db.schema().relation_id("R").unwrap();
    let mut d = Delta::new();
    d.insert(r, label, Tuple::parse(&[a, "x"]));
    d
}

fn mem_service(config: ServiceConfig) -> Provabsd {
    let vfs: SharedVfs = Arc::new(Mutex::new(FaultyVfs::new()));
    Provabsd::create(vfs, "svc", seed_db(), config).unwrap()
}

/// Two clients race for a single admission slot. In every schedule the
/// decisions linearize with the queue state: at least one client is
/// admitted, a rejection only ever pairs with the other client holding the
/// slot, and once both permits are gone the gauges drain to zero.
#[test]
fn admission_decisions_linearize_with_queue_state() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let svc = mem_service(ServiceConfig {
            queue_capacity: 1,
            ..Default::default()
        });
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let svc = svc.clone();
                sched::thread::spawn(move || match svc.acquire(10) {
                    Ok(permit) => {
                        drop(permit);
                        true
                    }
                    Err(ServiceError::Overloaded {
                        queue_depth,
                        queue_capacity,
                        ..
                    }) => {
                        // Overload reports the state the decision was
                        // made in: the queue really was full.
                        assert_eq!((queue_depth, queue_capacity), (1, 1));
                        false
                    }
                    Err(other) => panic!("unexpected admission error: {other}"),
                })
            })
            .collect();
        let admitted = clients
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count() as u64;
        assert!(admitted >= 1, "the first acquire can never be rejected");
        let s = svc.stats();
        assert_eq!(s.admitted, admitted);
        assert_eq!(s.admitted + s.rejected_queue, 2, "every decision counted");
        let h = svc.health();
        assert_eq!(h.queue_depth, 0, "permits drained the queue");
        assert_eq!(h.inflight_work, 0, "permits released their budgets");
    });
    outcome.expect_clean();
    assert!(outcome.complete, "sweep must be exhaustive: {outcome:?}");
    assert!(
        outcome.schedules >= 2,
        "both serialized and contended orders explored: {outcome:?}"
    );
    assert!(
        outcome.lock_cycle().is_none(),
        "service locks must be cycle-free: {:?}",
        outcome.lock_edges
    );
}

/// A writer exhausting its retries flips the service to degraded while a
/// health probe races it. In every schedule the probe sees either the
/// healthy or the fully degraded state — never a torn flip — and reads
/// keep serving the last published epoch afterwards.
#[test]
fn degraded_flip_is_atomic_with_health_in_every_schedule() {
    // Find the write boundary of the second commit with a clean dry run
    // (outside the explorer: passthrough mode, no scheduling points).
    let boundary = {
        let faulty = Arc::new(Mutex::new(FaultyVfs::new()));
        let vfs: SharedVfs = faulty.clone();
        let svc = Provabsd::create(vfs, "svc", seed_db(), ServiceConfig::default()).unwrap();
        svc.apply(&ins(svc.session().db(), "w0", "100")).unwrap();
        let count = faulty.lock().unwrap().write_count();
        count
    };
    let cfg = ServiceConfig {
        max_retries: 1,
        backoff_base: 1,
        ..Default::default()
    };
    let outcome = sched::explore_with(Config::unbounded(), move || {
        let vfs: SharedVfs = Arc::new(Mutex::new(FaultyVfs::with_faults(vec![
            Fault::CrashBeforeWrite(boundary),
        ])));
        let svc = Provabsd::create(vfs, "svc", seed_db(), cfg).unwrap();
        svc.apply(&ins(svc.session().db(), "w0", "100")).unwrap();
        let writer = {
            let svc = svc.clone();
            sched::thread::spawn(move || {
                let err = svc
                    .apply(&ins(svc.session().db(), "w1", "101"))
                    .unwrap_err();
                assert!(matches!(err, ServiceError::Degraded { .. }));
            })
        };
        // The racing probe: the flip is atomic — degraded status always
        // carries its cause, and the published epoch never regresses.
        let h = svc.health();
        if h.status == HealthStatus::Degraded {
            assert!(h.reason.is_some(), "degraded health must carry a cause");
        }
        assert_eq!(h.epoch, 1, "the acknowledged epoch stays published");
        writer.join().unwrap();
        // After the flip: fail-fast writes, reads still served.
        let h = svc.health();
        assert_eq!(h.status, HealthStatus::Degraded);
        assert_eq!(h.committed_txns, 1, "only the acknowledged commit");
        assert_eq!(svc.session().epoch(), 1);
        let err = svc
            .apply(&ins(svc.session().db(), "w2", "102"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Degraded { .. }));
        assert_eq!(svc.stats().degraded_writes, 1);
    });
    outcome.expect_clean();
    assert!(outcome.complete, "sweep must be exhaustive: {outcome:?}");
    assert!(
        outcome.lock_cycle().is_none(),
        "writer -> admission hierarchy must be acyclic: {:?}",
        outcome.lock_edges
    );
}
