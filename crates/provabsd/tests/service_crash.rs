//! Exhaustive writer-crash sweep at the service layer.
//!
//! The PR 6 crash matrix proves the *storage* recovery invariant; this
//! suite lifts it to the session service: a scripted delta stream is
//! driven through [`Provabsd`] with a crash injected at **every** VFS
//! write and sync boundary (WAL frames, commit markers, checkpoint pages,
//! header flips — all of them), and at every boundary it asserts
//!
//! 1. reader sessions pinned at any epoch keep answering bit-for-bit from
//!    that epoch's oracle — no session ever observes partial state, no
//!    matter where the writer died;
//! 2. the service degrades gracefully (typed error, degraded health with
//!    a cause, reads still served at the last published epoch);
//! 3. after the simulated restart, recovery resumes on exactly the
//!    acknowledged prefix.

use provabs_relational::storage::{Fault, FaultyVfs, SharedVfs, StorageError};
use provabs_relational::{parse_cq, Cq, Database, Delta, Evaluator, Tuple};
use provabsd::{HealthStatus, Provabsd, ServiceConfig, ServiceError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const BASE: &str = "svc";

fn seed_db() -> Database {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["a"]);
    for i in 0..6 {
        db.insert_str(
            r,
            &format!("t{i}"),
            &[&format!("{i}"), if i % 2 == 0 { "x" } else { "y" }],
        );
    }
    db.insert_str(s, "s0", &["0"]);
    db.insert_str(s, "s1", &["1"]);
    db.build_indexes();
    db
}

/// The scripted stream plus its oracle prefixes: `oracles[k]` is the seed
/// with the first `k` deltas applied — exactly the state a session pinned
/// at epoch `k` must serve.
fn script(seed: &Database) -> (Vec<Delta>, Vec<Database>) {
    let mut db = seed.clone();
    let mut oracles = vec![db.clone()];
    let mut deltas = Vec::new();
    for i in 0..4u32 {
        let r = db.schema().relation_id("R").unwrap();
        let mut d = Delta::new();
        d.insert(
            r,
            format!("b{i}x"),
            Tuple::parse(&[&format!("{}", 100 + i), "x"]),
        );
        d.insert(
            r,
            format!("b{i}y"),
            Tuple::parse(&[&format!("{}", 200 + i), "y"]),
        );
        if i == 2 {
            // A deletion mid-stream: recovery must reproduce the
            // swap-remove row order bit-for-bit too.
            d.delete(db.annotations().get("t0").unwrap());
        }
        db.apply_delta(&d);
        deltas.push(d);
        oracles.push(db.clone());
    }
    (deltas, oracles)
}

fn queries(seed: &Database) -> Vec<Cq> {
    vec![
        parse_cq("q(a, b) :- R(a, b)", seed.schema()).unwrap(),
        parse_cq("j(a, c) :- R(a, b), S(c)", seed.schema()).unwrap(),
    ]
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        max_retries: 1,
        backoff_base: 1,
        ..Default::default()
    }
}

fn faulty_pair(faults: Vec<Fault>) -> (Arc<Mutex<FaultyVfs>>, SharedVfs) {
    let faulty = Arc::new(Mutex::new(FaultyVfs::with_faults(faults)));
    let vfs: SharedVfs = faulty.clone();
    (faulty, vfs)
}

struct RunOutcome {
    created: bool,
    acked: u64,
}

/// Drives the scripted stream through the service on `vfs`, pinning a
/// session after every acknowledged commit and validating every pinned
/// session against its epoch's oracle — before *and* after whatever fault
/// fires. Returns what was acknowledged.
fn run(vfs: SharedVfs, deltas: &[Delta], oracles: &[Database], qs: &[Cq], ctx: &str) -> RunOutcome {
    let svc = match Provabsd::create(vfs, BASE, oracles[0].clone(), cfg()) {
        Ok(svc) => svc,
        Err(_) => {
            return RunOutcome {
                created: false,
                acked: 0,
            }
        }
    };
    let mut acked = 0u64;
    let mut degraded = false;
    let mut pinned = vec![svc.session()];
    for d in deltas {
        match svc.apply(d) {
            Ok(_) => {
                acked += 1;
                pinned.push(svc.session());
            }
            Err(ServiceError::Degraded { .. }) => {
                degraded = true;
                break;
            }
            Err(e) => panic!("unexpected writer error ({ctx}): {e}"),
        }
    }
    // Readers never observe partial state: every pinned session is
    // bit-for-bit its epoch's oracle, answers and work counters alike.
    for (k, s) in pinned.iter().enumerate() {
        assert_eq!(s.epoch(), k as u64, "session pin order ({ctx})");
        let oracle = &oracles[k];
        assert!(
            s.db().database().same_state(oracle),
            "pinned epoch {k} diverged from its oracle ({ctx})"
        );
        for q in qs {
            let want = Evaluator::new(oracle).eval_cq(q);
            let got = s
                .query(q)
                .unwrap_or_else(|e| panic!("read at epoch {k} failed ({ctx}): {e}"));
            assert_eq!(got.rows, want.0, "answers at epoch {k} ({ctx})");
            assert_eq!(got.work, want.1, "work counters at epoch {k} ({ctx})");
        }
    }
    if degraded {
        // Graceful degradation: typed health with a cause, reads still
        // served at the last published epoch, writes fail fast.
        let health = svc.health();
        assert_eq!(health.status, HealthStatus::Degraded, "({ctx})");
        assert!(health.reason.is_some(), "degraded without a cause ({ctx})");
        assert_eq!(health.committed_txns, acked, "({ctx})");
        assert_eq!(svc.session().epoch(), acked, "({ctx})");
        let err = svc.apply(&deltas[deltas.len() - 1]).unwrap_err();
        assert!(
            matches!(err, ServiceError::Degraded { .. }),
            "write while degraded must fail typed ({ctx}): {err}"
        );
    }
    RunOutcome {
        created: true,
        acked,
    }
}

/// The sweep: a crash before every write and every sync of the fault-free
/// op sequence.
#[test]
fn writer_crash_sweep_every_boundary() {
    let seed = seed_db();
    let (deltas, oracles) = script(&seed);
    let qs = queries(&seed);

    // Dry run: fault-free, establishes the boundary counts.
    let (writes, syncs) = {
        let (faulty, vfs) = faulty_pair(Vec::new());
        let out = run(vfs, &deltas, &oracles, &qs, "dry run");
        assert!(out.created, "dry run must create");
        assert_eq!(out.acked, deltas.len() as u64, "dry run must ack all");
        let g = faulty.lock().unwrap();
        (g.write_count(), g.sync_count())
    };
    assert!(writes > 0 && syncs > 0, "dry run exercised the disk");

    let mut cases: Vec<(String, Fault)> = Vec::new();
    for w in 0..writes {
        cases.push((
            format!("crash before write {w}"),
            Fault::CrashBeforeWrite(w),
        ));
    }
    for s in 0..syncs {
        cases.push((format!("crash before sync {s}"), Fault::CrashBeforeSync(s)));
    }

    for (ctx, fault) in cases {
        let (faulty, vfs) = faulty_pair(vec![fault]);
        let out = run(vfs.clone(), &deltas, &oracles, &qs, &ctx);
        // Simulated restart: the disk comes back with its durable image.
        faulty.lock().unwrap().recover();
        match Provabsd::open(vfs, BASE, cfg()) {
            Ok((svc, info)) => {
                if out.created {
                    assert_eq!(
                        info.committed_txns, out.acked,
                        "recovery must resume on the acknowledged prefix ({ctx})"
                    );
                }
                let k = info.committed_txns as usize;
                assert!(k < oracles.len(), "impossible prefix {k} ({ctx})");
                assert!(
                    svc.session().db().database().same_state(&oracles[k]),
                    "recovered state != oracle at {k} ({ctx})"
                );
                assert_eq!(svc.health().status, HealthStatus::Healthy, "({ctx})");
            }
            // The crash predated the first durable header commit: the
            // database never existed and creation was never acknowledged.
            Err(ServiceError::Storage(StorageError::NotFound(_))) if !out.created => {}
            Err(e) => panic!("recovery failed ({ctx}): {e}"),
        }
    }
}

/// Readers race the writer across an injected mid-stream crash: every pin
/// they take, at any interleaving, must be a whole epoch (bit-for-bit its
/// oracle), before, during, and after the writer dies.
#[test]
fn concurrent_readers_never_observe_partial_state_across_a_crash() {
    let seed = seed_db();
    let (deltas, oracles) = script(&seed);

    // Boundary: the first write of the third transaction (from a dry run).
    let boundary = {
        let (faulty, vfs) = faulty_pair(Vec::new());
        let svc = Provabsd::create(vfs, BASE, seed.clone(), cfg()).unwrap();
        svc.apply(&deltas[0]).unwrap();
        svc.apply(&deltas[1]).unwrap();
        let count = faulty.lock().unwrap().write_count();
        count
    };

    let (_faulty, vfs) = faulty_pair(vec![Fault::CrashBeforeWrite(boundary)]);
    let svc = Provabsd::create(vfs, BASE, seed.clone(), cfg()).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let svc = svc.clone();
            let (done, oracles) = (&done, &oracles);
            scope.spawn(move || {
                let mut pins = 0u32;
                loop {
                    let s = svc.session();
                    let k = s.epoch() as usize;
                    assert!(
                        s.db().database().same_state(&oracles[k]),
                        "reader pinned a torn epoch {k}"
                    );
                    pins += 1;
                    if done.load(Ordering::Acquire) && pins > 4 {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
        let mut acked = 0u64;
        for d in &deltas {
            match svc.apply(d) {
                Ok(_) => acked += 1,
                Err(ServiceError::Degraded { .. }) => break,
                Err(e) => panic!("unexpected writer error: {e}"),
            }
        }
        assert_eq!(acked, 2, "the injected crash fires in transaction 3");
        done.store(true, Ordering::Release);
    });
    assert_eq!(svc.health().status, HealthStatus::Degraded);
    assert_eq!(svc.session().epoch(), 2);
}
