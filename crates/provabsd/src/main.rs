//! `provabsd` CLI: a deterministic closed-loop driver for the service.
//!
//! There is no network listener (the container is offline by design);
//! instead the binary simulates the daemon's request loop: it generates a
//! TPC-H-shaped database, brings the service up over an in-memory VFS,
//! and drives a zipf-skewed closed-loop workload of reader queries
//! interleaved with writer churn batches. Every line it prints is a pure
//! function of the flags — run it twice, diff the output, get nothing.
//!
//! ```text
//! provabsd [--rows N] [--ops N] [--clients N] [--skew S] [--update-every K]
//!          [--seed N] [--budget N] [--queue N] [--hold N] [--fail-write K]
//! ```
//!
//! `--hold N` pre-admits N dummy requests for the whole run (demonstrating
//! admission rejections); `--fail-write K` arms a one-shot transient
//! failure of the K-th VFS write (demonstrating the bounded retry path).

use provabs_datagen::tpch::{generate, tpch_queries, TpchConfig};
use provabs_datagen::{
    service_schedule, ChurnConfig, ChurnGenerator, ServiceOp, ServiceWorkloadConfig,
};
use provabs_relational::storage::{Fault, FaultyVfs, SharedVfs};
use provabsd::{Provabsd, ServiceConfig, ServiceError, Session};
use std::sync::{Arc, Mutex};

struct Args {
    rows: usize,
    ops: usize,
    clients: usize,
    skew: f64,
    update_every: usize,
    seed: u64,
    budget: u64,
    queue: usize,
    hold: usize,
    fail_writes: Vec<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            rows: 400,
            ops: 64,
            clients: 4,
            skew: 1.1,
            update_every: 8,
            seed: 42,
            budget: 1 << 20,
            queue: 8,
            hold: 0,
            fail_writes: Vec::new(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: provabsd [--rows N] [--ops N] [--clients N] [--skew S] \
         [--update-every K] [--seed N] [--budget N] [--queue N] [--hold N] \
         [--fail-write K]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match flag.as_str() {
            "--rows" => args.rows = val("--rows").parse().unwrap_or_else(|_| usage()),
            "--ops" => args.ops = val("--ops").parse().unwrap_or_else(|_| usage()),
            "--clients" => args.clients = val("--clients").parse().unwrap_or_else(|_| usage()),
            "--skew" => args.skew = val("--skew").parse().unwrap_or_else(|_| usage()),
            "--update-every" => {
                args.update_every = val("--update-every").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--budget" => args.budget = val("--budget").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = val("--queue").parse().unwrap_or_else(|_| usage()),
            "--hold" => args.hold = val("--hold").parse().unwrap_or_else(|_| usage()),
            "--fail-write" => args
                .fail_writes
                .push(val("--fail-write").parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let (mut db, _rels) = generate(&TpchConfig {
        lineitem_rows: args.rows,
        seed: args.seed,
    });
    db.build_indexes();
    let queries = tpch_queries(db.schema());

    let faults: Vec<Fault> = args
        .fail_writes
        .iter()
        .map(|&k| Fault::FailWrite(k))
        .collect();
    let vfs: SharedVfs = Arc::new(Mutex::new(FaultyVfs::with_faults(faults)));
    let config = ServiceConfig {
        queue_capacity: args.queue,
        work_budget: args.budget,
        ..Default::default()
    };
    let svc = match Provabsd::create(vfs, "provabsd", db, config) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("failed to create service: {e}");
            std::process::exit(1);
        }
    };

    // Pre-admitted requests held for the whole run: each occupies a queue
    // slot, so `--hold` close to `--queue` forces rejections.
    let held: Vec<_> = (0..args.hold).map_while(|_| svc.acquire(1).ok()).collect();

    let schedule = service_schedule(&ServiceWorkloadConfig {
        clients: args.clients,
        operations: args.ops,
        templates: queries.len(),
        zipf_s: args.skew,
        update_every: args.update_every,
        seed: args.seed,
    });
    let mut churn = ChurnGenerator::new(&ChurnConfig {
        batch_size: 8,
        insert_ratio: 0.7,
        seed: args.seed,
    });

    // The closed loop: each client re-pins only when the epoch advanced
    // past its session, so pinned snapshots demonstrably serve stale-but-
    // consistent reads in between.
    let mut sessions: Vec<Option<Session>> = vec![None; args.clients.max(1)];
    let (mut ok, mut rejected, mut cancelled, mut degraded_writes, mut applied) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut answer_rows = 0u64;
    for op in &schedule {
        match *op {
            ServiceOp::Query { client, template } => {
                let slot = &mut sessions[client];
                let stale = slot
                    .as_ref()
                    .is_none_or(|s| s.epoch() < svc.registry().epoch());
                if stale {
                    *slot = Some(svc.session());
                }
                let session = slot.as_ref().expect("just pinned");
                match session.query(&queries[template].query) {
                    Ok(out) => {
                        ok += 1;
                        answer_rows += out.rows.len() as u64;
                    }
                    Err(ServiceError::Overloaded { .. }) => rejected += 1,
                    Err(ServiceError::BudgetExhausted { .. }) => cancelled += 1,
                    Err(e) => {
                        eprintln!("query failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            ServiceOp::Update => {
                let current = svc.session();
                let delta = churn.next_batch(current.db());
                match svc.apply(&delta) {
                    Ok(_) => applied += 1,
                    Err(ServiceError::Degraded { .. }) => degraded_writes += 1,
                    Err(e) => {
                        eprintln!("writer failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    drop(held);

    let stats = svc.stats();
    let health = svc.health();
    println!("provabsd closed-loop run");
    println!("  operations        : {}", schedule.len());
    println!("  completed         : {ok}");
    println!("  answer rows       : {answer_rows}");
    println!("  rejected          : {rejected}");
    println!("  cancelled         : {cancelled}");
    println!("  batches applied   : {applied}");
    println!("  degraded writes   : {degraded_writes}");
    println!("  epochs published  : {}", stats.epochs_published);
    println!("  writer retries    : {}", stats.writer_retries);
    println!("  backoff syncs     : {}", stats.backoff_syncs);
    println!("  max request work  : {}", stats.max_request_work);
    println!(
        "  plan cache        : {} hits / {} misses / {} invalidations",
        stats.plan_cache_hits, stats.plan_cache_misses, stats.plan_cache_invalidations
    );
    println!(
        "  health            : {:?} (epoch {}, {} txns committed)",
        health.status, health.epoch, health.committed_txns
    );
    if let Some(reason) = &health.reason {
        println!("  degraded reason   : {reason}");
    }
}
