//! `provabsd` — a snapshot-isolated multi-session service over the
//! provabs engine.
//!
//! The service composes the epoch layer of `provabs-relational` (see
//! [`SessionRegistry`]) with the durable storage engine into a
//! single-writer / many-reader daemon:
//!
//! * **Snapshot sessions.** Every [`Provabsd::session`] call pins the
//!   latest published epoch; the session answers queries from that
//!   immutable snapshot bit-for-bit however far the writer advances.
//! * **Admission control.** Requests are admitted against a bounded
//!   queue and an in-flight *work* budget ([`ServiceConfig`]); past
//!   either bound the service fails fast with the typed
//!   [`ServiceError::Overloaded`] instead of building an unbounded
//!   backlog.
//! * **Deterministic cancellation.** Each request carries a work budget
//!   enforced on the engine's [`EvalWork`] derivation counters — never
//!   wall-clock — so a cancelled request is cancelled at exactly the
//!   same point in every replay ([`ServiceError::BudgetExhausted`]).
//! * **Bounded retry with deterministic backoff.** Transient storage
//!   failures in the writer loop are retried up to
//!   [`ServiceConfig::max_retries`] times; between attempts the writer
//!   reopens the durable database (recovering to the acknowledged
//!   prefix) after a backoff of `backoff_base << (attempt - 1)` no-op
//!   header syncs — a schedule driven by operation sequence numbers, so
//!   fault-injection tests replay it exactly.
//! * **Graceful degradation.** When retries are exhausted the writer is
//!   parked: reads keep serving the last published snapshot, writes
//!   return [`ServiceError::Degraded`], and [`Provabsd::health`]
//!   reports the poison cause.
//! * **Shared epoch-aware cache.** One
//!   [`PrivacyCache`] is shared by
//!   every session; commits retire entries *at* the new epoch
//!   (`invalidate_at`), so sessions pinned at older epochs keep hitting
//!   the entries that are still valid for their snapshot.
//!
//! # Quickstart
//!
//! ```
//! use provabs_relational::storage::{shared, MemVfs};
//! use provabs_relational::{parse_cq, Database, Delta, Tuple};
//! use provabsd::{Provabsd, ServiceConfig};
//!
//! // Seed a database with one relation and two tuples.
//! let mut db = Database::new();
//! let r = db.add_relation("R", &["a", "b"]);
//! db.insert_str(r, "t1", &["1", "x"]);
//! db.insert_str(r, "t2", &["2", "x"]);
//! db.build_indexes();
//!
//! // Bring up the service over an in-memory VFS.
//! let vfs = shared(MemVfs::new());
//! let svc = Provabsd::create(vfs, "quick", db, ServiceConfig::default()).unwrap();
//!
//! // A reader session pins the current snapshot (epoch 0)...
//! let session = svc.session();
//! let q = parse_cq("q(x) :- R(x, 'x')", session.db().schema()).unwrap();
//! assert_eq!(session.query(&q).unwrap().rows.len(), 2);
//!
//! // ...the writer commits and publishes a new epoch...
//! let mut delta = Delta::new();
//! delta.insert(r, "t3", Tuple::parse(&["3", "x"]));
//! svc.apply(&delta).unwrap();
//!
//! // ...and the pinned session still answers from its epoch,
//! // while a fresh session sees the new one.
//! assert_eq!(session.query(&q).unwrap().rows.len(), 2);
//! assert_eq!(svc.session().query(&q).unwrap().rows.len(), 3);
//! assert_eq!(svc.session().epoch(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use provabs_core::privacy::{PrivacyCache, PrivacyConfig};
use provabs_relational::storage::{
    DurableDatabase, DurableOptions, RecoveryInfo, SharedVfs, StorageError,
};
use provabs_relational::{
    Adaptive, AppliedDelta, Cq, Database, Delta, EvalLimits, EvalWork, Evaluator, Execution,
    KRelation, PlanMode, RelId, SessionDb, SessionRegistry, SnapshotWriter,
};
use provabs_sched::sync::atomic::{AtomicU64, Ordering};
use provabs_sched::sync::Mutex as SchedMutex;
use provabs_semiring::AnnotId;
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum admitted requests outstanding at once; request
    /// `queue_capacity + 1` is rejected with [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum summed work budget of the admitted requests. Admission of a
    /// request whose budget would push the in-flight total past this bound
    /// is rejected.
    pub inflight_budget: u64,
    /// Default per-request work budget (maximum [`EvalWork::derivations`]
    /// before the request is cancelled with
    /// [`ServiceError::BudgetExhausted`]).
    pub work_budget: u64,
    /// Transient-failure retries of one writer commit before the service
    /// degrades to read-only.
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base << (n - 1)` no-op header
    /// syncs through the VFS — observable in the op-sequence counters, so
    /// the schedule replays deterministically.
    pub backoff_base: u32,
    /// Publish a new snapshot epoch after this many committed
    /// transactions (clamped to at least 1).
    pub publish_every: u64,
    /// Storage engine options.
    pub durable: DurableOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 8,
            inflight_budget: 1 << 22,
            work_budget: 1 << 20,
            max_retries: 3,
            backoff_base: 2,
            publish_every: 1,
            durable: DurableOptions::default(),
        }
    }
}

/// Typed service errors. Every variant is fail-fast: the service never
/// blocks a caller on an unbounded queue or a wall-clock timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the queue or the in-flight
    /// work budget is full. Back off and retry later.
    Overloaded {
        /// Admitted requests outstanding at rejection time.
        queue_depth: usize,
        /// The configured queue bound.
        queue_capacity: usize,
        /// Summed budgets of the admitted requests.
        inflight_work: u64,
        /// The configured in-flight work bound.
        inflight_budget: u64,
    },
    /// The request exhausted its work budget and was cancelled
    /// deterministically (same point in every replay).
    BudgetExhausted {
        /// The budget the request was admitted with.
        budget: u64,
        /// Derivations counted when the evaluator stopped.
        derivations: u64,
    },
    /// The writer is parked after exhausting its retries; reads still
    /// serve the last published snapshot, writes fail with this error.
    Degraded {
        /// The storage error that parked the writer.
        reason: String,
    },
    /// A storage-layer error surfaced directly (e.g. a rejected delta).
    Storage(StorageError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded {
                queue_depth,
                queue_capacity,
                inflight_work,
                inflight_budget,
            } => write!(
                f,
                "overloaded: {queue_depth}/{queue_capacity} requests, \
                 {inflight_work}/{inflight_budget} in-flight work"
            ),
            ServiceError::BudgetExhausted {
                budget,
                derivations,
            } => write!(
                f,
                "request cancelled: work budget {budget} exhausted at {derivations} derivations"
            ),
            ServiceError::Degraded { reason } => {
                write!(f, "service degraded to read-only: {reason}")
            }
            ServiceError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StorageError> for ServiceError {
    fn from(e: StorageError) -> Self {
        ServiceError::Storage(e)
    }
}

/// Coarse health of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Reads and writes are served.
    Healthy,
    /// The writer is parked; reads serve the last published snapshot.
    Degraded,
}

/// What a health endpoint reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// Healthy or degraded.
    pub status: HealthStatus,
    /// The poison cause when degraded (from
    /// [`DurableDatabase::poison_cause`] or the final retry error).
    pub reason: Option<String>,
    /// The latest published epoch.
    pub epoch: u64,
    /// Committed (acknowledged) transactions.
    pub committed_txns: u64,
    /// Admitted requests outstanding.
    pub queue_depth: usize,
    /// Summed work budgets of the admitted requests.
    pub inflight_work: u64,
}

/// A deterministic snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected_queue: u64,
    /// Requests rejected because the in-flight work budget was full.
    pub rejected_work: u64,
    /// Requests completed within budget.
    pub completed: u64,
    /// Requests cancelled on budget exhaustion.
    pub cancelled: u64,
    /// The largest [`EvalWork::derivations`] any completed or cancelled
    /// request counted — the gate asserting budgets actually bind.
    pub max_request_work: u64,
    /// Snapshot epochs published.
    pub epochs_published: u64,
    /// Writer retry attempts after transient storage failures.
    pub writer_retries: u64,
    /// No-op backoff syncs issued between retries.
    pub backoff_syncs: u64,
    /// Writes rejected while degraded.
    pub degraded_writes: u64,
    /// Plan-cache lookups answered from a cached version.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that planned cold.
    pub plan_cache_misses: u64,
    /// Plan versions retired by epoch fences at publication.
    pub plan_cache_invalidations: u64,
}

#[derive(Debug)]
struct StatCells {
    admitted: AtomicU64,
    rejected_queue: AtomicU64,
    rejected_work: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    max_request_work: AtomicU64,
    epochs_published: AtomicU64,
    writer_retries: AtomicU64,
    backoff_syncs: AtomicU64,
    degraded_writes: AtomicU64,
}

impl Default for StatCells {
    fn default() -> Self {
        Self {
            admitted: AtomicU64::labeled("provabsd.stats.admitted", 0),
            rejected_queue: AtomicU64::labeled("provabsd.stats.rejected_queue", 0),
            rejected_work: AtomicU64::labeled("provabsd.stats.rejected_work", 0),
            completed: AtomicU64::labeled("provabsd.stats.completed", 0),
            cancelled: AtomicU64::labeled("provabsd.stats.cancelled", 0),
            max_request_work: AtomicU64::labeled("provabsd.stats.max_request_work", 0),
            epochs_published: AtomicU64::labeled("provabsd.stats.epochs_published", 0),
            writer_retries: AtomicU64::labeled("provabsd.stats.writer_retries", 0),
            backoff_syncs: AtomicU64::labeled("provabsd.stats.backoff_syncs", 0),
            degraded_writes: AtomicU64::labeled("provabsd.stats.degraded_writes", 0),
        }
    }
}

#[derive(Debug, Default)]
struct Admission {
    queue_depth: usize,
    inflight_work: u64,
}

/// The writer half: the durable database, the unique snapshot publisher,
/// and everything needed to reopen after a fault. `durable == None` means
/// the handle was poisoned and the next attempt must reopen.
#[derive(Debug)]
struct WriterState {
    durable: Option<DurableDatabase>,
    publisher: SnapshotWriter,
    vfs: SharedVfs,
    base: String,
    /// Set when retries were exhausted: the service is read-only.
    degraded: Option<String>,
    /// Committed transactions (mirrored so health works while degraded).
    committed: u64,
    /// Commits since the last published epoch.
    txns_since_publish: u64,
    /// Annotations touched by committed-but-unpublished transactions;
    /// retired in the cache when their epoch publishes.
    pending_touched: HashSet<AnnotId>,
    /// Relations changed by committed-but-unpublished transactions;
    /// retired in the plan cache when their epoch publishes.
    pending_rels: BTreeSet<RelId>,
}

#[derive(Debug)]
struct Inner {
    config: ServiceConfig,
    registry: Arc<SessionRegistry>,
    /// Lock order (audited by the schedule harness): `provabsd.writer` may
    /// be held while `provabsd.admission` is acquired (see [`Provabsd::health`]);
    /// never the reverse.
    writer: SchedMutex<WriterState>,
    admission: SchedMutex<Admission>,
    cache: Arc<PrivacyCache>,
    stats: StatCells,
}

/// The service handle. Cloning is cheap (one `Arc` bump); all clones share
/// the registry, the writer, the admission state, and the cache.
#[derive(Debug, Clone)]
pub struct Provabsd {
    inner: Arc<Inner>,
}

/// An admission permit: proof that the request's work budget was reserved.
/// Dropping it releases the queue slot and the budget.
#[derive(Debug)]
pub struct Permit {
    service: Provabsd,
    budget: u64,
}

impl Permit {
    /// The work budget this permit reserved.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if let Ok(mut a) = self.service.inner.admission.lock() {
            a.queue_depth = a.queue_depth.saturating_sub(1);
            a.inflight_work = a.inflight_work.saturating_sub(self.budget);
        }
    }
}

/// Per-query knobs; the default runs the engine defaults under the
/// service-wide work budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Work budget override (`None` = [`ServiceConfig::work_budget`]).
    pub budget: Option<u64>,
    /// Join-order planning mode.
    pub plan: PlanMode,
    /// Execution engine.
    pub execution: Execution,
    /// Deterministic mid-join re-planning (`None` = off, replaying the
    /// static baselines bit-for-bit; see
    /// [`Evaluator::adaptive`](provabs_relational::Evaluator::adaptive)).
    pub adaptive: Option<Adaptive>,
}

/// The result of one admitted, completed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The annotated answer relation.
    pub rows: KRelation,
    /// Deterministic work counters of the evaluation.
    pub work: EvalWork,
    /// The epoch the answering snapshot was pinned at.
    pub epoch: u64,
}

/// A reader session pinned to one published epoch.
///
/// Queries run against the pinned [`SessionDb`] and are therefore
/// bit-identical however far the writer has advanced — including their
/// [`EvalWork`] counters.
#[derive(Debug, Clone)]
pub struct Session {
    service: Provabsd,
    db: SessionDb,
}

impl Session {
    /// The pinned snapshot.
    pub fn db(&self) -> &SessionDb {
        &self.db
    }

    /// The epoch this session is pinned at.
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// Stamps `base` with this session's epoch, so privacy evaluations
    /// through the shared cache only see entries valid for this snapshot.
    pub fn privacy_config(&self, base: &PrivacyConfig) -> PrivacyConfig {
        PrivacyConfig {
            epoch: self.db.epoch(),
            ..base.clone()
        }
    }

    /// Evaluates `q` under the default [`QueryOptions`]: admission, then
    /// evaluation under the service-wide work budget.
    pub fn query(&self, q: &Cq) -> Result<QueryOutcome, ServiceError> {
        self.query_opts(q, &QueryOptions::default())
    }

    /// Evaluates `q` under explicit options. The request is admitted
    /// first (reserving its budget), evaluated with
    /// [`EvalLimits::max_derivations`] capped at the budget, and
    /// cancelled with [`ServiceError::BudgetExhausted`] if the cap was
    /// reached — a deterministic decision on the derivation counter, not
    /// on time.
    pub fn query_opts(&self, q: &Cq, opts: &QueryOptions) -> Result<QueryOutcome, ServiceError> {
        let budget = opts.budget.unwrap_or(self.service.inner.config.work_budget);
        let _permit = self.service.acquire(budget)?;
        let limits = EvalLimits {
            max_derivations: usize::try_from(budget).unwrap_or(usize::MAX),
            ..EvalLimits::default()
        };
        // Every session consults the registry-wide plan cache at its
        // pinned epoch: a hit returns the byte-identical plan a cold run
        // would compute, so results and EvalWork counters are unchanged
        // (the hit/miss counters live on the cache itself).
        let mut eval = Evaluator::new(&self.db)
            .plan(opts.plan)
            .execution(opts.execution)
            .limits(limits)
            .plan_cache(self.service.inner.registry.plan_cache(), self.db.epoch());
        if let Some(ad) = opts.adaptive {
            eval = eval.adaptive(ad.k);
        }
        let (rows, work) = eval.eval_cq(q);
        let stats = &self.service.inner.stats;
        stats
            .max_request_work
            .fetch_max(work.derivations, Ordering::Relaxed);
        if work.derivations >= budget {
            stats.cancelled.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::BudgetExhausted {
                budget,
                derivations: work.derivations,
            });
        }
        stats.completed.fetch_add(1, Ordering::Relaxed);
        Ok(QueryOutcome {
            rows,
            work,
            epoch: self.db.epoch(),
        })
    }
}

impl Provabsd {
    /// Creates a fresh durable database at `base` on `vfs` and brings the
    /// service up over it, publishing the initial snapshot as epoch 0.
    pub fn create(
        vfs: SharedVfs,
        base: &str,
        db: Database,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let durable = DurableDatabase::create(vfs.clone(), base, db, config.durable)?;
        Ok(Self::wire(vfs, base, durable, config))
    }

    /// Opens an existing durable database, recovering to its last
    /// committed transaction, and serves that state as epoch 0.
    pub fn open(
        vfs: SharedVfs,
        base: &str,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryInfo), ServiceError> {
        let (durable, info) = DurableDatabase::open(vfs.clone(), base, config.durable)?;
        Ok((Self::wire(vfs, base, durable, config), info))
    }

    fn wire(vfs: SharedVfs, base: &str, durable: DurableDatabase, config: ServiceConfig) -> Self {
        let committed = durable.committed_txns();
        let (registry, publisher) = SessionRegistry::shared(durable.db().clone());
        Self {
            inner: Arc::new(Inner {
                config,
                registry,
                writer: SchedMutex::labeled(
                    "provabsd.writer",
                    WriterState {
                        durable: Some(durable),
                        publisher,
                        vfs,
                        base: base.to_owned(),
                        degraded: None,
                        committed,
                        txns_since_publish: 0,
                        pending_touched: HashSet::new(),
                        pending_rels: BTreeSet::new(),
                    },
                ),
                admission: SchedMutex::labeled("provabsd.admission", Admission::default()),
                cache: Arc::new(PrivacyCache::new()),
                stats: StatCells::default(),
            }),
        }
    }

    /// The session registry (for callers that want to pin raw
    /// [`SessionDb`]s without the service request path).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.inner.registry
    }

    /// The shared cross-session privacy cache. Commits retire entries
    /// epoch-aware, so configs stamped by [`Session::privacy_config`]
    /// always read entries valid for their snapshot.
    pub fn cache(&self) -> &Arc<PrivacyCache> {
        &self.inner.cache
    }

    /// Pins the latest published snapshot as a new reader session.
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            db: self.inner.registry.pin(),
        }
    }

    /// Admits a request with `budget` work units, or rejects it with
    /// [`ServiceError::Overloaded`]. The returned [`Permit`] releases the
    /// queue slot and the budget on drop — callers simulating concurrent
    /// clients (the bench harness) hold permits to model outstanding
    /// requests deterministically.
    pub fn acquire(&self, budget: u64) -> Result<Permit, ServiceError> {
        let cfg = &self.inner.config;
        let stats = &self.inner.stats;
        let mut a = self
            .inner
            .admission
            .lock()
            .expect("admission lock poisoned");
        let overloaded = |a: &Admission| ServiceError::Overloaded {
            queue_depth: a.queue_depth,
            queue_capacity: cfg.queue_capacity,
            inflight_work: a.inflight_work,
            inflight_budget: cfg.inflight_budget,
        };
        if a.queue_depth >= cfg.queue_capacity {
            stats.rejected_queue.fetch_add(1, Ordering::Relaxed);
            return Err(overloaded(&a));
        }
        if a.inflight_work.saturating_add(budget) > cfg.inflight_budget {
            stats.rejected_work.fetch_add(1, Ordering::Relaxed);
            return Err(overloaded(&a));
        }
        a.queue_depth += 1;
        a.inflight_work += budget;
        stats.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit {
            service: self.clone(),
            budget,
        })
    }

    /// Applies `delta` as one durable transaction through the single
    /// writer, retrying transient storage failures up to
    /// [`ServiceConfig::max_retries`] times (reopening the durable
    /// database between attempts, with the op-sequence backoff described
    /// in the module docs). On success the commit is acknowledged, and a
    /// new epoch publishes once [`ServiceConfig::publish_every`] commits
    /// have accumulated — retiring the touched cache entries *at* the
    /// new epoch first, so no session can pin the epoch before the fences
    /// are in place.
    ///
    /// Rejected deltas ([`StorageError::InvalidDelta`]) return
    /// immediately without retrying: nothing was logged, the writer stays
    /// healthy. Exhausted retries park the writer
    /// ([`ServiceError::Degraded`]); reads continue from the last
    /// published snapshot.
    pub fn apply(&self, delta: &Delta) -> Result<AppliedDelta, ServiceError> {
        let cfg = &self.inner.config;
        let stats = &self.inner.stats;
        let mut w = self.inner.writer.lock().expect("writer lock poisoned");
        if let Some(reason) = &w.degraded {
            stats.degraded_writes.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Degraded {
                reason: reason.clone(),
            });
        }
        let mut attempt = 0u32;
        loop {
            // Reopen after a poisoned attempt: recovery lands exactly on
            // the acknowledged prefix, so re-applying `delta` is safe
            // whether or not the failed attempt reached the log.
            if w.durable.is_none() {
                match DurableDatabase::open(w.vfs.clone(), &w.base, cfg.durable) {
                    Ok((re, info)) => {
                        w.committed = info.committed_txns;
                        w.durable = Some(re);
                    }
                    Err(e) => {
                        if attempt >= cfg.max_retries {
                            return Err(degrade(stats, &mut w, e.to_string()));
                        }
                        attempt += 1;
                        stats.writer_retries.fetch_add(1, Ordering::Relaxed);
                        self.backoff(&w, attempt);
                        continue;
                    }
                }
            }
            let durable = w.durable.as_mut().expect("just ensured");
            match durable.apply_delta(delta) {
                Ok(applied) => {
                    w.committed += 1;
                    w.txns_since_publish += 1;
                    w.pending_touched.extend(applied.touched());
                    w.pending_rels.extend(applied.rels.iter().copied());
                    if w.txns_since_publish >= cfg.publish_every.max(1) {
                        let next = self.inner.registry.epoch() + 1;
                        let touched = std::mem::take(&mut w.pending_touched);
                        self.inner.cache.invalidate_at(&touched, next);
                        // The plan cache is fenced before publication for
                        // the same reason: no session may pin `next` and
                        // still hit a plan computed from older statistics.
                        let rels: Vec<RelId> =
                            std::mem::take(&mut w.pending_rels).into_iter().collect();
                        self.inner.registry.plan_cache().invalidate_at(&rels, next);
                        let ws = &mut *w;
                        let pstats = ws
                            .publisher
                            .publish(ws.durable.as_ref().expect("live handle").db());
                        debug_assert_eq!(pstats.epoch, next, "publisher and registry agree");
                        ws.txns_since_publish = 0;
                        stats.epochs_published.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(applied);
                }
                Err(e @ StorageError::InvalidDelta(_)) => return Err(ServiceError::Storage(e)),
                Err(e) => {
                    if durable.is_poisoned() {
                        w.durable = None;
                    }
                    if attempt >= cfg.max_retries {
                        return Err(degrade(stats, &mut w, e.to_string()));
                    }
                    attempt += 1;
                    stats.writer_retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff(&w, attempt);
                }
            }
        }
    }

    /// Deterministic backoff before retry `attempt`: `backoff_base <<
    /// (attempt - 1)` no-op syncs of the header file. Errors are ignored
    /// (the VFS may be mid-fault); the syncs advance the VFS op-sequence
    /// counters, which is exactly what makes the retry schedule
    /// observable and replayable without any clock.
    fn backoff(&self, w: &WriterState, attempt: u32) {
        let spins = u64::from(self.inner.config.backoff_base) << (attempt - 1).min(16);
        let header = format!("{}.db", w.base);
        for _ in 0..spins {
            if let Ok(mut v) = w.vfs.lock() {
                let _ = v.sync(&header);
            }
            self.inner
                .stats
                .backoff_syncs
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Forces a checkpoint of the durable database.
    pub fn checkpoint(&self) -> Result<(), ServiceError> {
        let mut w = self.inner.writer.lock().expect("writer lock poisoned");
        if let Some(reason) = &w.degraded {
            return Err(ServiceError::Degraded {
                reason: reason.clone(),
            });
        }
        match w.durable.as_mut() {
            Some(d) => d.checkpoint().map_err(ServiceError::from),
            None => Ok(()),
        }
    }

    /// The health report: status, poison cause (when degraded), latest
    /// epoch, acknowledged commits, and the admission gauges.
    pub fn health(&self) -> Health {
        let w = self.inner.writer.lock().expect("writer lock poisoned");
        let a = self
            .inner
            .admission
            .lock()
            .expect("admission lock poisoned");
        let reason = w.degraded.clone().or_else(|| {
            w.durable
                .as_ref()
                .and_then(|d| d.poison_cause().map(str::to_owned))
        });
        Health {
            status: if w.degraded.is_some() {
                HealthStatus::Degraded
            } else {
                HealthStatus::Healthy
            },
            reason,
            epoch: self.inner.registry.epoch(),
            committed_txns: w.committed,
            queue_depth: a.queue_depth,
            inflight_work: a.inflight_work,
        }
    }

    /// A snapshot of the deterministic service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        let pc = self.inner.registry.plan_cache().stats();
        ServiceStats {
            plan_cache_hits: pc.hits,
            plan_cache_misses: pc.misses,
            plan_cache_invalidations: pc.invalidations,
            admitted: s.admitted.load(Ordering::Relaxed),
            rejected_queue: s.rejected_queue.load(Ordering::Relaxed),
            rejected_work: s.rejected_work.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            max_request_work: s.max_request_work.load(Ordering::Relaxed),
            epochs_published: s.epochs_published.load(Ordering::Relaxed),
            writer_retries: s.writer_retries.load(Ordering::Relaxed),
            backoff_syncs: s.backoff_syncs.load(Ordering::Relaxed),
            degraded_writes: s.degraded_writes.load(Ordering::Relaxed),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }
}

/// Parks the writer: records the reason, drops the durable handle, and
/// returns the typed error. Reads are untouched.
fn degrade(stats: &StatCells, w: &mut WriterState, reason: String) -> ServiceError {
    let _ = stats; // degradation itself is visible through `health`
    w.degraded = Some(reason.clone());
    w.durable = None;
    ServiceError::Degraded { reason }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::storage::{shared, Fault, FaultyVfs, MemVfs};
    use provabs_relational::{parse_cq, Tuple};
    use std::sync::Mutex;

    fn seed_db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.add_relation("S", &["a"]);
        for i in 0..8 {
            db.insert_str(r, &format!("t{i}"), &[&format!("{i}"), "x"]);
        }
        db.build_indexes();
        db
    }

    fn ins(db: &Database, label: &str, a: &str) -> Delta {
        let r = db.schema().relation_id("R").unwrap();
        let mut d = Delta::new();
        d.insert(r, label, Tuple::parse(&[a, "x"]));
        d
    }

    fn mem_service(config: ServiceConfig) -> Provabsd {
        Provabsd::create(shared(MemVfs::new()), "svc", seed_db(), config).unwrap()
    }

    #[test]
    fn admission_rejects_past_queue_capacity() {
        let svc = mem_service(ServiceConfig {
            queue_capacity: 2,
            ..Default::default()
        });
        let p1 = svc.acquire(10).unwrap();
        let _p2 = svc.acquire(10).unwrap();
        let err = svc.acquire(10).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                queue_depth: 2,
                queue_capacity: 2,
                ..
            }
        ));
        assert_eq!(svc.health().queue_depth, 2);
        // Releasing a permit opens a slot again.
        drop(p1);
        let _p3 = svc.acquire(10).unwrap();
        let s = svc.stats();
        assert_eq!((s.admitted, s.rejected_queue), (3, 1));
    }

    #[test]
    fn admission_rejects_past_inflight_work_budget() {
        let svc = mem_service(ServiceConfig {
            queue_capacity: 10,
            inflight_budget: 100,
            ..Default::default()
        });
        let _p1 = svc.acquire(60).unwrap();
        let err = svc.acquire(50).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                inflight_work: 60,
                ..
            }
        ));
        assert_eq!(svc.stats().rejected_work, 1);
        let _p2 = svc.acquire(40).unwrap();
        assert_eq!(svc.health().inflight_work, 100);
    }

    #[test]
    fn budget_cancellation_is_deterministic() {
        let svc = mem_service(ServiceConfig::default());
        let session = svc.session();
        let q = parse_cq("q(a, b) :- R(a, x), R(b, x)", session.db().schema()).unwrap();
        let opts = QueryOptions {
            budget: Some(5),
            ..Default::default()
        };
        let first = session.query_opts(&q, &opts).unwrap_err();
        let second = session.query_opts(&q, &opts).unwrap_err();
        assert_eq!(first, second, "cancellation point replays bit-for-bit");
        match first {
            ServiceError::BudgetExhausted {
                budget,
                derivations,
            } => {
                assert_eq!(budget, 5);
                assert_eq!(derivations, 5, "the evaluator stops exactly at the cap");
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
        let s = svc.stats();
        assert_eq!(s.cancelled, 2);
        assert!(s.max_request_work <= 5);
        // A sufficient budget completes the same query.
        let ok = session
            .query_opts(
                &q,
                &QueryOptions {
                    budget: Some(1000),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(ok.rows.len(), 64);
        assert_eq!(svc.stats().completed, 1);
    }

    #[test]
    fn transient_write_failure_retries_and_commits() {
        // Dry-run the exact sequence to find the first write of the
        // second commit, then arm a one-shot transient failure there.
        let boundary = {
            let faulty = Arc::new(Mutex::new(FaultyVfs::new()));
            let vfs: SharedVfs = faulty.clone();
            let svc = Provabsd::create(vfs, "svc", seed_db(), ServiceConfig::default()).unwrap();
            svc.apply(&ins(svc.session().db(), "w0", "100")).unwrap();
            let count = faulty.lock().unwrap().write_count();
            count
        };
        let faulty = Arc::new(Mutex::new(FaultyVfs::with_faults(vec![Fault::FailWrite(
            boundary,
        )])));
        let vfs: SharedVfs = faulty.clone();
        let svc = Provabsd::create(vfs, "svc", seed_db(), ServiceConfig::default()).unwrap();
        svc.apply(&ins(svc.session().db(), "w0", "100")).unwrap();
        let pre = svc.session();
        svc.apply(&ins(svc.session().db(), "w1", "101")).unwrap();
        let s = svc.stats();
        assert_eq!(s.writer_retries, 1, "one transient failure, one retry");
        assert_eq!(s.backoff_syncs, u64::from(svc.config().backoff_base));
        assert_eq!(s.epochs_published, 2);
        assert_eq!(svc.health().status, HealthStatus::Healthy);
        assert_eq!(svc.health().committed_txns, 2);
        // The pre-failure session is untouched; a fresh one sees the commit.
        assert_eq!(pre.epoch(), 1);
        let fresh = svc.session();
        assert_eq!(fresh.epoch(), 2);
        let r = fresh.db().schema().relation_id("R").unwrap();
        assert_eq!(fresh.db().relation_len(r), 10);
        // Reopening from the same VFS recovers both commits: the retry
        // really made the delta durable.
        drop(svc);
        let reopen_vfs: SharedVfs = faulty;
        let (re, info) = Provabsd::open(reopen_vfs, "svc", ServiceConfig::default()).unwrap();
        assert_eq!(info.committed_txns, 2);
        assert_eq!(re.session().db().relation_len(r), 10);
    }

    #[test]
    fn exhausted_retries_degrade_to_readonly() {
        // A hard crash (all I/O fails until recover) exhausts every retry.
        let boundary = {
            let faulty = Arc::new(Mutex::new(FaultyVfs::new()));
            let vfs: SharedVfs = faulty.clone();
            let svc = Provabsd::create(vfs, "svc", seed_db(), ServiceConfig::default()).unwrap();
            svc.apply(&ins(svc.session().db(), "w0", "100")).unwrap();
            let count = faulty.lock().unwrap().write_count();
            count
        };
        let faulty = Arc::new(Mutex::new(FaultyVfs::with_faults(vec![
            Fault::CrashBeforeWrite(boundary),
        ])));
        let vfs: SharedVfs = faulty.clone();
        let cfg = ServiceConfig {
            max_retries: 2,
            backoff_base: 1,
            ..Default::default()
        };
        let svc = Provabsd::create(vfs, "svc", seed_db(), cfg).unwrap();
        svc.apply(&ins(svc.session().db(), "w0", "100")).unwrap();
        let pinned = svc.session();
        let q = parse_cq("q(a) :- R(a, 'x')", pinned.db().schema()).unwrap();
        let before = pinned.query(&q).unwrap();

        let err = svc
            .apply(&ins(svc.session().db(), "w1", "101"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Degraded { .. }));
        let health = svc.health();
        assert_eq!(health.status, HealthStatus::Degraded);
        assert!(health.reason.is_some(), "poison cause is reported");
        assert_eq!(health.committed_txns, 1, "only the acknowledged commit");
        assert_eq!(svc.stats().writer_retries, 2, "retries were bounded");

        // Reads keep serving the pinned snapshot, bit-for-bit.
        let after = pinned.query(&q).unwrap();
        assert_eq!(before.rows, after.rows);
        assert_eq!(before.work, after.work);
        assert_eq!(svc.session().epoch(), 1);

        // Further writes fail fast with the same typed error.
        let err2 = svc
            .apply(&ins(svc.session().db(), "w2", "102"))
            .unwrap_err();
        assert!(matches!(err2, ServiceError::Degraded { .. }));
        assert_eq!(svc.stats().degraded_writes, 1);

        // After the "disk" recovers, a reopen resumes on the
        // acknowledged prefix.
        faulty.lock().unwrap().recover();
        let reopen_vfs: SharedVfs = faulty;
        let (re, info) = Provabsd::open(reopen_vfs, "svc", cfg).unwrap();
        assert_eq!(info.committed_txns, 1);
        assert_eq!(re.health().status, HealthStatus::Healthy);
    }

    #[test]
    fn invalid_deltas_reject_without_degrading() {
        let svc = mem_service(ServiceConfig::default());
        let db = svc.session();
        // Label reuse is rejected by validation before any WAL append.
        let err = svc.apply(&ins(db.db(), "t0", "200")).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Storage(StorageError::InvalidDelta(_))
        ));
        assert_eq!(svc.health().status, HealthStatus::Healthy);
        assert_eq!(svc.stats().writer_retries, 0, "no retry for invalid input");
        // The writer still works.
        svc.apply(&ins(db.db(), "ok", "201")).unwrap();
        assert_eq!(svc.health().committed_txns, 1);
    }

    #[test]
    fn publish_every_batches_epochs_and_cache_fences() {
        let svc = mem_service(ServiceConfig {
            publish_every: 2,
            ..Default::default()
        });
        let base = svc.session();
        svc.apply(&ins(base.db(), "w0", "100")).unwrap();
        assert_eq!(svc.session().epoch(), 0, "first commit not yet published");
        svc.apply(&ins(base.db(), "w1", "101")).unwrap();
        assert_eq!(svc.session().epoch(), 1, "second commit publishes");
        assert_eq!(svc.health().committed_txns, 2);
        assert_eq!(svc.stats().epochs_published, 1);
    }
}
