//! The update-scenario axis: delta maintenance vs full re-evaluation under
//! churn (the `micro_updates` bench and the CI perf gate both drive this).
//!
//! Each scenario replays a deterministic update stream against a TPC-H
//! instance while keeping one workload query's K-relation live two ways —
//! merging [`KRelationDelta`](provabs_relational::KRelationDelta)s versus
//! re-evaluating from scratch — and counts the evaluation work of both.
//! Equality of the two maintained results is asserted on every batch, so a
//! run that completes *is* the correctness witness; the counters quantify
//! the savings with machine-independent numbers the CI gate can diff.

use crate::report::BenchMetric;
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{ChurnConfig, ChurnGenerator};
use provabs_relational::{Cq, EvalWork, Evaluator, Execution, PlanMode, Updater};
use std::time::Instant;

/// Shape of one update scenario sweep.
#[derive(Debug, Clone)]
pub struct UpdateSettings {
    /// TPC-H scale (lineitem rows).
    pub lineitem_rows: usize,
    /// Batches replayed per scenario.
    pub batches: usize,
    /// Changes per batch.
    pub batch_size: usize,
    /// Insert fractions swept (one scenario per query × ratio).
    pub insert_ratios: Vec<f64>,
    /// Workload queries swept (names as in
    /// [`tpch_queries`](provabs_datagen::tpch::tpch_queries)).
    pub queries: Vec<String>,
    /// Generator / stream seed.
    pub seed: u64,
    /// Atom-order mode of every evaluation. Defaults to
    /// [`PlanMode::Greedy`] — the pre-planner engine order the checked-in
    /// `BENCH_2.json` counters were measured under, so the gate keeps
    /// diffing identical numbers.
    pub plan_mode: PlanMode,
}

impl Default for UpdateSettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 1_000,
            batches: 6,
            batch_size: 12,
            insert_ratios: vec![1.0, 0.5, 0.0],
            queries: vec!["TPCH-Q3".into(), "TPCH-Q4".into(), "TPCH-Q10".into()],
            seed: 42,
            plan_mode: PlanMode::Greedy,
        }
    }
}

impl UpdateSettings {
    /// The fixed configuration of the CI perf gate: small enough for a
    /// 1-CPU runner, deterministic, and the shape `BENCH_2.json` is built
    /// from. Changing this invalidates the checked-in baseline — re-emit it.
    pub fn ci_gate() -> Self {
        Self {
            lineitem_rows: 600,
            batches: 4,
            batch_size: 8,
            ..Self::default()
        }
    }
}

/// The outcome of one scenario (already flattened into report metrics).
pub fn run_update_comparison(settings: &UpdateSettings) -> Vec<BenchMetric> {
    let mut out = Vec::new();
    let (db_proto, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    let workloads = tpch::tpch_queries(db_proto.schema());
    for qname in &settings.queries {
        let Some(w) = workloads.iter().find(|w| &w.name == qname) else {
            continue;
        };
        for &ratio in &settings.insert_ratios {
            out.push(replay(&db_proto, qname, &w.query, ratio, settings));
        }
    }
    out
}

/// Replays one update stream, maintaining the query's K-relation through
/// deltas and through re-evaluation, counting both.
fn replay(
    db_proto: &provabs_relational::Database,
    qname: &str,
    query: &Cq,
    insert_ratio: f64,
    settings: &UpdateSettings,
) -> BenchMetric {
    let mut db = db_proto.clone();
    db.build_indexes();
    // BENCH_2 replays counters recorded on the scalar engine.
    let mut cached = Evaluator::new(&db)
        .plan(settings.plan_mode)
        .execution(Execution::Scalar)
        .eval_cq(query)
        .0;
    let mut gen = ChurnGenerator::new(&ChurnConfig {
        batch_size: settings.batch_size,
        insert_ratio,
        seed: settings.seed ^ (insert_ratio.to_bits().rotate_left(17)),
    });
    let mut delta_work = EvalWork::default();
    let mut full_work = EvalWork::default();
    let mut delta_ms = 0.0f64;
    let mut full_ms = 0.0f64;
    let mut equal = true;
    for _ in 0..settings.batches {
        let delta = gen.next_batch(&db);
        let t0 = Instant::now();
        let outcome = Updater::new()
            .plan(settings.plan_mode)
            .execution(Execution::Scalar)
            .apply(&mut db, &delta, std::slice::from_ref(query));
        let merged = outcome.deltas[0].merge_into(&mut cached);
        delta_ms += t0.elapsed().as_secs_f64() * 1e3;
        delta_work.absorb(&outcome.work);
        let t1 = Instant::now();
        let (full, w) = Evaluator::new(&db)
            .plan(settings.plan_mode)
            .execution(Execution::Scalar)
            .eval_cq(query);
        full_ms += t1.elapsed().as_secs_f64() * 1e3;
        full_work.absorb(&w);
        equal &= merged && cached == full;
    }
    BenchMetric {
        name: format!("{qname}/ins{}", (insert_ratio * 100.0).round() as u32),
        delta_rows: delta_work.rows_examined,
        full_rows: full_work.rows_examined,
        delta_derivations: delta_work.derivations,
        full_derivations: full_work.derivations,
        delta_ms,
        full_ms,
        equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let settings = UpdateSettings {
            lineitem_rows: 400,
            batches: 3,
            batch_size: 6,
            insert_ratios: vec![0.5],
            queries: vec!["TPCH-Q4".into()],
            ..Default::default()
        };
        let metrics = run_update_comparison(&settings);
        assert_eq!(metrics.len(), 1);
        let m = &metrics[0];
        assert!(m.equal, "delta maintenance diverged from re-evaluation");
        assert!(
            m.delta_rows < m.full_rows,
            "delta path explored {} rows, full re-eval {}",
            m.delta_rows,
            m.full_rows
        );
        assert!(m.delta_derivations < m.full_derivations);
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let a = run_update_comparison(&UpdateSettings {
            queries: vec!["TPCH-Q4".into()],
            insert_ratios: vec![1.0],
            ..UpdateSettings::ci_gate()
        });
        let b = run_update_comparison(&UpdateSettings {
            queries: vec!["TPCH-Q4".into()],
            insert_ratios: vec![1.0],
            ..UpdateSettings::ci_gate()
        });
        assert_eq!(a[0].delta_rows, b[0].delta_rows);
        assert_eq!(a[0].full_rows, b[0].full_rows);
        assert_eq!(a[0].delta_derivations, b[0].delta_derivations);
    }
}
