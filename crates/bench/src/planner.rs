//! The planner-comparison axis: the cost-based query planner versus
//! written-order execution on adversarially-ordered workloads (the
//! `micro_planner` bench and the `BENCH_5.json` CI perf gate both drive
//! this).
//!
//! Every scenario takes a TPC-H or IMDB workload query, rewrites it into
//! its pessimal written order ([`provabs_datagen::adversarial_order`]:
//! big scans first, one planted cross product, selective constants last)
//! and evaluates the *same* rewritten query twice — once under
//! [`PlanMode::CostBased`], once under [`PlanMode::WrittenOrder`]. Three
//! scenario families:
//!
//! * `tpch/<query>/adv`, `imdb/<query>/adv` — one full evaluation each
//!   way. The compared counter is `rows_examined` — candidate rows the
//!   backtracking join touched, the same machine-independent probe-work
//!   proxy `BENCH_2.json` gates on — plus the index-probe count. Output
//!   K-relations must be bit-for-bit equal to each other *and* to the
//!   naive decoded-scan oracle ([`provabs_relational::oracle`]).
//! * `churn/<query>/adv` — the delta path maintains the adversarial
//!   query's K-relation over a deterministic update stream under both
//!   modes; counters accumulate across every pivot-restricted pass and
//!   both maintained caches must equal the oracle on the final database.
//!
//! The counters are deterministic (plans depend only on database content +
//! query; see `provabs_relational::plan`), so the gate is immune to runner
//! noise. The acceptance bar is a ≥ 2× probe-work reduction
//! (`planned_rows * 2 <= written_rows`) on every scenario, fail-closed.

use crate::report::PlannerMetric;
use provabs_datagen::imdb::{self, ImdbConfig};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{adversarial_order, ChurnConfig, ChurnGenerator};
use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::{
    eval_cq_traced, Cq, Database, EvalLimits, EvalWork, Execution, KRelation, PlanMode, Updater,
};
use std::time::Instant;

/// Shape of one planner-comparison sweep.
#[derive(Debug, Clone)]
pub struct PlannerSettings {
    /// TPC-H scale (lineitem rows). Keep oracle-feasible.
    pub lineitem_rows: usize,
    /// IMDB people.
    pub imdb_people: usize,
    /// IMDB movies.
    pub imdb_movies: usize,
    /// TPC-H workload queries swept (each as its adversarial variant).
    pub tpch_queries: Vec<String>,
    /// IMDB workload queries swept (each as its adversarial variant).
    pub imdb_queries: Vec<String>,
    /// TPC-H queries swept by the `churn/` scenarios.
    pub churn_queries: Vec<String>,
    /// Batches replayed per churn scenario.
    pub batches: usize,
    /// Changes per batch.
    pub batch_size: usize,
    /// Insert fraction of the churn stream.
    pub insert_ratio: f64,
    /// Generator / stream seed.
    pub seed: u64,
}

impl Default for PlannerSettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 600,
            imdb_people: 150,
            imdb_movies: 150,
            tpch_queries: vec!["TPCH-Q3".into(), "TPCH-Q5".into(), "TPCH-Q10".into()],
            imdb_queries: vec!["IMDB-Q2".into(), "IMDB-Q5".into()],
            churn_queries: vec!["TPCH-Q3".into(), "TPCH-Q10".into()],
            batches: 3,
            batch_size: 8,
            insert_ratio: 0.5,
            seed: 42,
        }
    }
}

impl PlannerSettings {
    /// The fixed configuration of the CI perf gate: small enough for a
    /// 1-CPU runner, deterministic, and the shape `BENCH_5.json` is built
    /// from. Changing this invalidates the checked-in baseline — re-emit
    /// it.
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// Runs every scenario of `settings`, returning one metric per scenario.
pub fn run_planner_comparison(settings: &PlannerSettings) -> Vec<PlannerMetric> {
    let mut out = Vec::new();
    let (tpch_db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    let tpch_workloads = tpch::tpch_queries(tpch_db.schema());
    for qname in &settings.tpch_queries {
        if let Some(w) = tpch_workloads.iter().find(|w| &w.name == qname) {
            let adv = adversarial_order(&tpch_db, &w.query);
            out.push(eval_metric(&tpch_db, &format!("tpch/{qname}/adv"), &adv));
        }
    }
    let (imdb_db, _) = imdb::generate(&ImdbConfig {
        num_people: settings.imdb_people,
        num_movies: settings.imdb_movies,
        cast_per_movie: 5,
        seed: settings.seed,
    });
    let imdb_workloads = imdb::imdb_queries(imdb_db.schema());
    for qname in &settings.imdb_queries {
        if let Some(w) = imdb_workloads.iter().find(|w| &w.name == qname) {
            let adv = adversarial_order(&imdb_db, &w.query);
            out.push(eval_metric(&imdb_db, &format!("imdb/{qname}/adv"), &adv));
        }
    }
    for qname in &settings.churn_queries {
        if let Some(w) = tpch_workloads.iter().find(|w| &w.name == qname) {
            let adv = adversarial_order(&tpch_db, &w.query);
            out.push(churn_metric(
                &tpch_db,
                &format!("churn/{qname}/adv"),
                &adv,
                settings,
            ));
        }
    }
    out
}

fn metric_from(
    name: &str,
    planned: &EvalWork,
    written: &EvalWork,
    planned_ms: f64,
    written_ms: f64,
    equal: bool,
) -> PlannerMetric {
    PlannerMetric {
        name: name.to_owned(),
        planned_rows: planned.rows_examined,
        written_rows: written.rows_examined,
        planned_probes: planned.probes,
        written_probes: written.probes,
        atoms_reordered: planned.plan.atoms_reordered,
        est_rows: planned.plan.est_rows,
        planned_ms,
        written_ms,
        equal,
    }
}

/// One `tpch/`/`imdb/` scenario: full evaluation of the adversarial query
/// both ways, plus the oracle as the independent correctness witness.
fn eval_metric(db_proto: &Database, name: &str, adv: &Cq) -> PlannerMetric {
    let mut db = db_proto.clone();
    db.build_indexes();
    let t0 = Instant::now();
    let (planned_out, planned_work, trace) =
        eval_cq_traced(&db, adv, EvalLimits::default(), PlanMode::CostBased);
    let planned_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let (written_out, written_work, _) =
        eval_cq_traced(&db, adv, EvalLimits::default(), PlanMode::WrittenOrder);
    let written_ms = t1.elapsed().as_secs_f64() * 1e3;
    let oracle = oracle_eval_cq(&db, adv);
    debug_assert_eq!(trace.plan.steps.len(), trace.actual_rows.len());
    let equal = planned_out == written_out && planned_out == oracle;
    metric_from(
        name,
        &planned_work,
        &written_work,
        planned_ms,
        written_ms,
        equal,
    )
}

/// One `churn/` scenario: the delta path maintains the adversarial query's
/// K-relation over the same deterministic update stream under both modes.
fn churn_metric(
    db_proto: &Database,
    name: &str,
    adv: &Cq,
    settings: &PlannerSettings,
) -> PlannerMetric {
    let run = |mode: PlanMode| -> (KRelation, EvalWork, f64, bool, Database) {
        let mut db = db_proto.clone();
        db.build_indexes();
        let (mut cached, _, _) = eval_cq_traced(&db, adv, EvalLimits::default(), mode);
        let mut gen = ChurnGenerator::new(&ChurnConfig {
            batch_size: settings.batch_size,
            insert_ratio: settings.insert_ratio,
            seed: settings.seed ^ 0x91a5_00f5,
        });
        let mut work = EvalWork::default();
        let mut ms = 0.0f64;
        let mut merged = true;
        for _ in 0..settings.batches {
            let delta = gen.next_batch(&db);
            let t0 = Instant::now();
            // BENCH_5 replays counters recorded on the scalar engine.
            let outcome = Updater::new()
                .plan(mode)
                .execution(Execution::Scalar)
                .apply(&mut db, &delta, std::slice::from_ref(adv));
            merged &= outcome.deltas[0].merge_into(&mut cached);
            ms += t0.elapsed().as_secs_f64() * 1e3;
            work.absorb(&outcome.work);
        }
        (cached, work, ms, merged, db)
    };
    let (planned_cache, planned_work, planned_ms, planned_merged, db) = run(PlanMode::CostBased);
    let (written_cache, written_work, written_ms, written_merged, _) = run(PlanMode::WrittenOrder);
    let oracle = oracle_eval_cq(&db, adv);
    let equal = planned_merged
        && written_merged
        && planned_cache == written_cache
        && planned_cache == oracle;
    metric_from(
        name,
        &planned_work,
        &written_work,
        planned_ms,
        written_ms,
        equal,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> PlannerSettings {
        PlannerSettings {
            lineitem_rows: 300,
            tpch_queries: vec!["TPCH-Q3".into()],
            imdb_queries: vec!["IMDB-Q5".into()],
            churn_queries: vec!["TPCH-Q3".into()],
            batches: 2,
            ..Default::default()
        }
    }

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let metrics = run_planner_comparison(&quick_settings());
        assert_eq!(metrics.len(), 3);
        for m in &metrics {
            assert!(m.equal, "{}: planned eval diverged", m.name);
            assert!(
                m.planned_rows * 2 <= m.written_rows,
                "{}: planned {} vs written {} rows — below the 2x bar",
                m.name,
                m.planned_rows,
                m.written_rows
            );
            assert!(m.atoms_reordered > 0, "{}: planner did nothing", m.name);
        }
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let settings = PlannerSettings {
            tpch_queries: vec!["TPCH-Q3".into()],
            imdb_queries: vec![],
            churn_queries: vec!["TPCH-Q3".into()],
            ..PlannerSettings::ci_gate()
        };
        let a = run_planner_comparison(&settings);
        let b = run_planner_comparison(&settings);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.planned_rows, y.planned_rows, "{}", x.name);
            assert_eq!(x.written_rows, y.written_rows, "{}", x.name);
            assert_eq!(x.planned_probes, y.planned_probes, "{}", x.name);
            assert_eq!(x.written_probes, y.written_probes, "{}", x.name);
            assert_eq!(x.atoms_reordered, y.atoms_reordered, "{}", x.name);
            assert_eq!(x.est_rows, y.est_rows, "{}", x.name);
        }
    }
}
