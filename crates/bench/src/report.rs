//! Measurement records, table printing, CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One measured point of a figure's series.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub query: String,
    /// The varied parameter (x-axis value).
    pub param: String,
    /// Wall time of the search in milliseconds.
    pub runtime_ms: f64,
    /// Whether an abstraction meeting the threshold was found.
    pub found: bool,
    /// Privacy of the optimum.
    pub privacy: usize,
    /// Loss of information of the optimum.
    pub loi: f64,
    /// Tree edges used by the optimum ("optimal abstraction size").
    pub edges: u32,
    /// Abstractions enumerated.
    pub abstractions: usize,
    /// Privacy evaluations performed.
    pub privacy_evals: usize,
    /// Whether any cap truncated the search.
    pub truncated: bool,
    /// Free-form note.
    pub note: String,
}

impl Measurement {
    fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{},{},{:.6},{},{},{},{},{}",
            self.query,
            self.param,
            self.runtime_ms,
            self.found,
            self.privacy,
            self.loi,
            self.edges,
            self.abstractions,
            self.privacy_evals,
            self.truncated,
            self.note.replace(',', ";"),
        )
    }
}

/// Renders measurements as an aligned text table (one row per point).
pub fn print_table(title: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>7} {:>8} {:>9} {:>6} {:>8} {:>6}",
        "query", "param", "runtime_ms", "found", "privacy", "loi", "edges", "abstrs", "trunc"
    );
    for m in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12.2} {:>7} {:>8} {:>9.3} {:>6} {:>8} {:>6}",
            m.query,
            m.param,
            m.runtime_ms,
            m.found,
            m.privacy,
            m.loi,
            m.edges,
            m.abstractions,
            m.truncated
        );
    }
    out
}

/// Writes measurements as CSV under `dir/name.csv`.
pub fn write_csv(dir: &Path, name: &str, rows: &[Measurement]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut body = String::from(
        "query,param,runtime_ms,found,privacy,loi,edges,abstractions,privacy_evals,truncated,note\n",
    );
    for m in rows {
        body.push_str(&m.csv_row());
        body.push('\n');
    }
    fs::write(dir.join(format!("{name}.csv")), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            query: "TPCH-Q3".into(),
            param: "5".into(),
            runtime_ms: 12.5,
            found: true,
            privacy: 5,
            loi: 2.708,
            edges: 2,
            abstractions: 40,
            privacy_evals: 7,
            truncated: false,
            note: String::new(),
        }
    }

    #[test]
    fn table_contains_values() {
        let t = print_table("Fig 9", &[sample()]);
        assert!(t.contains("TPCH-Q3"));
        assert!(t.contains("12.50"));
        assert!(t.contains("2.708"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("provabs_report_test");
        write_csv(&dir, "fig9", &[sample()]).unwrap();
        let content = std::fs::read_to_string(dir.join("fig9.csv")).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.lines().nth(1).unwrap().starts_with("TPCH-Q3,5,"));
    }
}
