//! Measurement records, table printing, CSV output, and the `BENCH_*.json`
//! machine-readable report the perf-regression CI gate diffs.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One measured point of a figure's series.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub query: String,
    /// The varied parameter (x-axis value).
    pub param: String,
    /// Wall time of the search in milliseconds.
    pub runtime_ms: f64,
    /// Whether an abstraction meeting the threshold was found.
    pub found: bool,
    /// Privacy of the optimum.
    pub privacy: usize,
    /// Loss of information of the optimum.
    pub loi: f64,
    /// Tree edges used by the optimum ("optimal abstraction size").
    pub edges: u32,
    /// Abstractions enumerated.
    pub abstractions: usize,
    /// Privacy evaluations performed.
    pub privacy_evals: usize,
    /// Whether any cap truncated the search.
    pub truncated: bool,
    /// Free-form note.
    pub note: String,
}

impl Measurement {
    fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{},{},{:.6},{},{},{},{},{}",
            self.query,
            self.param,
            self.runtime_ms,
            self.found,
            self.privacy,
            self.loi,
            self.edges,
            self.abstractions,
            self.privacy_evals,
            self.truncated,
            self.note.replace(',', ";"),
        )
    }
}

/// Renders measurements as an aligned text table (one row per point).
pub fn print_table(title: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>7} {:>8} {:>9} {:>6} {:>8} {:>6}",
        "query", "param", "runtime_ms", "found", "privacy", "loi", "edges", "abstrs", "trunc"
    );
    for m in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12.2} {:>7} {:>8} {:>9.3} {:>6} {:>8} {:>6}",
            m.query,
            m.param,
            m.runtime_ms,
            m.found,
            m.privacy,
            m.loi,
            m.edges,
            m.abstractions,
            m.truncated
        );
    }
    out
}

/// Writes measurements as CSV under `dir/name.csv`.
pub fn write_csv(dir: &Path, name: &str, rows: &[Measurement]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut body = String::from(
        "query,param,runtime_ms,found,privacy,loi,edges,abstractions,privacy_evals,truncated,note\n",
    );
    for m in rows {
        body.push_str(&m.csv_row());
        body.push('\n');
    }
    fs::write(dir.join(format!("{name}.csv")), body)
}

/// One entry of a `BENCH_*.json` report: the deterministic work counters of
/// a delta-maintenance step next to the full re-evaluation it replaces.
///
/// Wall-clock times are carried for humans; the CI gate compares only the
/// counter-derived ratios, which are machine-independent (same database,
/// same query, same plan ⇒ same counters).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Scenario name as the harness emits it: `{query}/ins{percent}`,
    /// e.g. `TPCH-Q3/ins50` for a 50% insert / 50% delete mix.
    pub name: String,
    /// Rows examined by the delta path (retractions + additions + merge).
    pub delta_rows: u64,
    /// Rows examined by full re-evaluation of the same batches.
    pub full_rows: u64,
    /// Derivations the delta path emitted.
    pub delta_derivations: u64,
    /// Derivations full re-evaluation emitted.
    pub full_derivations: u64,
    /// Wall time of the delta path, milliseconds (informational).
    pub delta_ms: f64,
    /// Wall time of full re-evaluation, milliseconds (informational).
    pub full_ms: f64,
    /// Whether the merged cache stayed bit-for-bit equal to re-evaluation.
    pub equal: bool,
}

impl BenchMetric {
    /// Delta work as a fraction of full-re-evaluation work (lower is
    /// better; `>= 1` means the delta path stopped paying for itself).
    pub fn work_ratio(&self) -> f64 {
        self.delta_rows as f64 / self.full_rows.max(1) as f64
    }
}

/// Serializes a bench report. Hand-rolled (the vendored serde stub does not
/// serialize): one scalar per line, stable key order — the exact shape
/// [`parse_bench_json`] reads back.
pub fn render_bench_json(bench: &str, metrics: &[BenchMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"delta_rows\": {},", m.delta_rows);
        let _ = writeln!(out, "      \"full_rows\": {},", m.full_rows);
        let _ = writeln!(out, "      \"delta_derivations\": {},", m.delta_derivations);
        let _ = writeln!(out, "      \"full_derivations\": {},", m.full_derivations);
        let _ = writeln!(out, "      \"work_ratio\": {:.6},", m.work_ratio());
        let _ = writeln!(out, "      \"delta_ms\": {:.3},", m.delta_ms);
        let _ = writeln!(out, "      \"full_ms\": {:.3},", m.full_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a bench report to `path` (creating parent directories).
pub fn write_bench_json(path: &Path, bench: &str, metrics: &[BenchMetric]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_bench_json(bench, metrics))
}

/// One entry of the `BENCH_3.json` report: deterministic work counters of a
/// memoized-interned path next to the owned-polynomial path it replaces,
/// plus the memo hit/miss split behind the cached numbers.
///
/// `cached_work` / `owned_work` count the same unit per scenario — rows
/// re-abstracted for `search/*` scenarios, polynomial constructions for
/// `eval/*` scenarios — so their ratio is the machine-independent speedup
/// proxy the CI gate diffs. Wall-clock columns are carried for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct InternMetric {
    /// Scenario name, e.g. `search/TPCH-Q3` or `eval/TPCH-Q4`.
    pub name: String,
    /// Work units the memoized interned path actually performed.
    pub cached_work: u64,
    /// Work units the owned-polynomial path performed on the same trace.
    pub owned_work: u64,
    /// Memoized lookups answered in O(1).
    pub memo_hits: u64,
    /// Memoized lookups that had to compute (equals `cached_work` when the
    /// counter is construction-based).
    pub memo_misses: u64,
    /// Wall time of the interned path, milliseconds (informational).
    pub cached_ms: f64,
    /// Wall time of the owned path, milliseconds (informational).
    pub owned_ms: f64,
    /// Whether both paths produced identical results.
    pub equal: bool,
}

impl InternMetric {
    /// Cached work as a fraction of owned work (lower is better; the
    /// acceptance bar is ≤ 0.5, i.e. at least a 2× reduction).
    pub fn work_ratio(&self) -> f64 {
        self.cached_work as f64 / self.owned_work.max(1) as f64
    }

    /// Fraction of memoized lookups answered without computing.
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Serializes an intern-comparison report in the same hand-rolled
/// line-oriented shape as [`render_bench_json`].
pub fn render_intern_json(bench: &str, metrics: &[InternMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"cached_work\": {},", m.cached_work);
        let _ = writeln!(out, "      \"owned_work\": {},", m.owned_work);
        let _ = writeln!(out, "      \"memo_hits\": {},", m.memo_hits);
        let _ = writeln!(out, "      \"memo_misses\": {},", m.memo_misses);
        let _ = writeln!(out, "      \"work_ratio\": {:.6},", m.work_ratio());
        let _ = writeln!(out, "      \"hit_rate\": {:.6},", m.hit_rate());
        let _ = writeln!(out, "      \"cached_ms\": {:.3},", m.cached_ms);
        let _ = writeln!(out, "      \"owned_ms\": {:.3},", m.owned_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes an intern-comparison report to `path` (creating parent
/// directories).
pub fn write_intern_json(
    path: &Path,
    bench: &str,
    metrics: &[InternMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_intern_json(bench, metrics))
}

/// One entry of the `BENCH_4.json` report: deterministic storage-layer work
/// counters of the dictionary-encoded columnar engine next to what the
/// row-oriented owned-`Value` engine it replaced would have spent on the
/// identical evaluation — join-probe hash bytes and binding/output
/// bytes-moved, counted per probe and per move by the engine itself
/// ([`EvalWork`](provabs_relational::EvalWork)).
///
/// `id_probe_bytes / value_probe_bytes` is the machine-independent
/// join-probe hash-work ratio the CI gate diffs (acceptance bar: ≤ 0.5,
/// i.e. at least a 2× reduction); the moved-bytes pair tracks binding and
/// output materialization the same way. Wall-clock columns are for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageMetric {
    /// Scenario name, e.g. `eval/TPCH-Q3` or `churn/TPCH-Q4`.
    pub name: String,
    /// Index probes the engine issued.
    pub probes: u64,
    /// Bytes those probes fed the hasher (4 per probe — a `ValueId`).
    pub id_probe_bytes: u64,
    /// Bytes the same probes would have hashed as owned `Value`s.
    pub value_probe_bytes: u64,
    /// Bytes moved into bindings and output accumulation as ids.
    pub id_moved_bytes: u64,
    /// Bytes the same moves would have cloned as owned `Value`s.
    pub value_moved_bytes: u64,
    /// Wall time of the engine run, milliseconds (informational).
    pub engine_ms: f64,
    /// Wall time of the owned-value oracle, milliseconds (informational).
    pub oracle_ms: f64,
    /// Whether the engine output matched the owned-value oracle
    /// bit-for-bit.
    pub equal: bool,
}

impl StorageMetric {
    /// Id probe-hash bytes as a fraction of owned probe-hash bytes (lower
    /// is better; the acceptance bar is ≤ 0.5).
    pub fn work_ratio(&self) -> f64 {
        self.id_probe_bytes as f64 / self.value_probe_bytes.max(1) as f64
    }

    /// Id moved bytes as a fraction of owned moved bytes.
    pub fn moved_ratio(&self) -> f64 {
        self.id_moved_bytes as f64 / self.value_moved_bytes.max(1) as f64
    }
}

/// Serializes a storage-comparison report in the same hand-rolled
/// line-oriented shape as [`render_bench_json`].
pub fn render_storage_json(bench: &str, metrics: &[StorageMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"probes\": {},", m.probes);
        let _ = writeln!(out, "      \"id_probe_bytes\": {},", m.id_probe_bytes);
        let _ = writeln!(out, "      \"value_probe_bytes\": {},", m.value_probe_bytes);
        let _ = writeln!(out, "      \"id_moved_bytes\": {},", m.id_moved_bytes);
        let _ = writeln!(out, "      \"value_moved_bytes\": {},", m.value_moved_bytes);
        let _ = writeln!(out, "      \"work_ratio\": {:.6},", m.work_ratio());
        let _ = writeln!(out, "      \"moved_ratio\": {:.6},", m.moved_ratio());
        let _ = writeln!(out, "      \"engine_ms\": {:.3},", m.engine_ms);
        let _ = writeln!(out, "      \"oracle_ms\": {:.3},", m.oracle_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a storage-comparison report to `path` (creating parent
/// directories).
pub fn write_storage_json(
    path: &Path,
    bench: &str,
    metrics: &[StorageMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_storage_json(bench, metrics))
}

/// One entry of the `BENCH_5.json` report: deterministic work counters of a
/// cost-based-planned evaluation next to the written-order execution of the
/// *same adversarially-ordered query* — candidate rows examined and index
/// probes issued, counted by the engine itself
/// ([`EvalWork`](provabs_relational::EvalWork)), plus the planner's own
/// counters (atoms it moved, rows it predicted).
///
/// `planned_rows / written_rows` is the machine-independent probe-work
/// ratio the CI gate diffs (acceptance bar: ≤ 0.5, i.e. the planner must
/// at least halve the join work the pessimal written order pays).
/// Wall-clock columns are carried for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerMetric {
    /// Scenario name, e.g. `tpch/TPCH-Q3/adv` or `churn/TPCH-Q10/adv`.
    pub name: String,
    /// Candidate rows the cost-based plan examined.
    pub planned_rows: u64,
    /// Candidate rows written-order execution examined.
    pub written_rows: u64,
    /// Index probes the cost-based plan issued.
    pub planned_probes: u64,
    /// Index probes written-order execution issued.
    pub written_probes: u64,
    /// Atoms the planner placed at a different position than written.
    pub atoms_reordered: u64,
    /// The planner's summed per-step row estimates (its own prediction of
    /// `planned_rows`).
    pub est_rows: u64,
    /// Wall time of the planned run, milliseconds (informational).
    pub planned_ms: f64,
    /// Wall time of the written-order run, milliseconds (informational).
    pub written_ms: f64,
    /// Whether both executions (and the naive oracle) produced bit-for-bit
    /// identical K-relations.
    pub equal: bool,
}

impl PlannerMetric {
    /// Planned probe work as a fraction of written-order probe work (lower
    /// is better; the acceptance bar is ≤ 0.5).
    pub fn work_ratio(&self) -> f64 {
        self.planned_rows as f64 / self.written_rows.max(1) as f64
    }

    /// Planned index probes as a fraction of written-order probes.
    pub fn probe_ratio(&self) -> f64 {
        self.planned_probes as f64 / self.written_probes.max(1) as f64
    }
}

/// Serializes a planner-comparison report in the same hand-rolled
/// line-oriented shape as [`render_bench_json`].
pub fn render_planner_json(bench: &str, metrics: &[PlannerMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"planned_rows\": {},", m.planned_rows);
        let _ = writeln!(out, "      \"written_rows\": {},", m.written_rows);
        let _ = writeln!(out, "      \"planned_probes\": {},", m.planned_probes);
        let _ = writeln!(out, "      \"written_probes\": {},", m.written_probes);
        let _ = writeln!(out, "      \"atoms_reordered\": {},", m.atoms_reordered);
        let _ = writeln!(out, "      \"est_rows\": {},", m.est_rows);
        let _ = writeln!(out, "      \"work_ratio\": {:.6},", m.work_ratio());
        let _ = writeln!(out, "      \"probe_ratio\": {:.6},", m.probe_ratio());
        let _ = writeln!(out, "      \"planned_ms\": {:.3},", m.planned_ms);
        let _ = writeln!(out, "      \"written_ms\": {:.3},", m.written_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a planner-comparison report to `path` (creating parent
/// directories).
pub fn write_planner_json(
    path: &Path,
    bench: &str,
    metrics: &[PlannerMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_planner_json(bench, metrics))
}

/// Parses a report produced by [`render_planner_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_planner_json(text: &str) -> Option<(String, Vec<PlannerMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<PlannerMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(PlannerMetric {
                    name: value.trim_matches('"').to_owned(),
                    planned_rows: 0,
                    written_rows: 0,
                    planned_probes: 0,
                    written_probes: 0,
                    atoms_reordered: 0,
                    est_rows: 0,
                    planned_ms: 0.0,
                    written_ms: 0.0,
                    equal: false,
                });
            }
            "planned_rows" => cur.as_mut()?.planned_rows = value.parse().ok()?,
            "written_rows" => cur.as_mut()?.written_rows = value.parse().ok()?,
            "planned_probes" => cur.as_mut()?.planned_probes = value.parse().ok()?,
            "written_probes" => cur.as_mut()?.written_probes = value.parse().ok()?,
            "atoms_reordered" => cur.as_mut()?.atoms_reordered = value.parse().ok()?,
            "est_rows" => cur.as_mut()?.est_rows = value.parse().ok()?,
            "work_ratio" | "probe_ratio" => {} // derived; recomputed
            "planned_ms" => cur.as_mut()?.planned_ms = value.parse().ok()?,
            "written_ms" => cur.as_mut()?.written_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// One entry of the `BENCH_9.json` report: deterministic work counters of
/// an adaptive (mid-join re-planning + sideways statistics) evaluation
/// next to the static cost-based plan on the same correlated-skew
/// workload, plus the epoch-keyed plan-cache counters of a closed-loop
/// service scenario.
///
/// Two scenario families share the record:
///
/// * `corr-skew/*` — `adaptive_rows / static_rows` is the
///   machine-independent probe-work ratio the CI gate diffs (acceptance
///   bar: ≤ 0.5, i.e. adaptivity must at least halve the join work the
///   confidently-wrong static plan pays); the cache columns are zero.
/// * `plan-cache/*` — the row columns carry the closed loop's total
///   examined rows (equal by construction: cached plans are bit-identical
///   to cold plans) and the gate bar is `hit_rate() ≥ 0.9`.
///
/// Wall-clock columns are carried for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveMetric {
    /// Scenario name, e.g. `corr-skew/s9` or `plan-cache/zipf`.
    pub name: String,
    /// Candidate rows the adaptive evaluation examined.
    pub adaptive_rows: u64,
    /// Candidate rows the static cost-based plan examined.
    pub static_rows: u64,
    /// Times the mis-estimate trigger fired during the adaptive run.
    pub replans_triggered: u64,
    /// Worst observed estimation error of the *initial* plan
    /// (`actual_rows / cumulative_estimate`, maximized over depths).
    pub est_error_max: u64,
    /// Plan-cache lookups answered from a cached version.
    pub cache_hits: u64,
    /// Plan-cache lookups that planned cold.
    pub cache_misses: u64,
    /// Plan versions retired by epoch fences at publication.
    pub cache_invalidations: u64,
    /// Wall time of the adaptive run, milliseconds (informational).
    pub adaptive_ms: f64,
    /// Wall time of the static run, milliseconds (informational).
    pub static_ms: f64,
    /// Whether adaptive, static, and oracle outputs were bit-for-bit
    /// identical (for `plan-cache/*`: snapshot matches the oracle replay).
    pub equal: bool,
}

impl AdaptiveMetric {
    /// Adaptive probe work as a fraction of static probe work (lower is
    /// better; the acceptance bar on `corr-skew/*` scenarios is ≤ 0.5).
    pub fn work_ratio(&self) -> f64 {
        self.adaptive_rows as f64 / self.static_rows.max(1) as f64
    }

    /// Plan-cache hit ratio (the acceptance bar on `plan-cache/*`
    /// scenarios is ≥ 0.9; 0 when the scenario issued no lookups).
    pub fn hit_rate(&self) -> f64 {
        self.cache_hits as f64 / (self.cache_hits + self.cache_misses).max(1) as f64
    }
}

/// Serializes an adaptive-execution report in the same hand-rolled
/// line-oriented shape as [`render_bench_json`].
pub fn render_adaptive_json(bench: &str, metrics: &[AdaptiveMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"adaptive_rows\": {},", m.adaptive_rows);
        let _ = writeln!(out, "      \"static_rows\": {},", m.static_rows);
        let _ = writeln!(out, "      \"replans_triggered\": {},", m.replans_triggered);
        let _ = writeln!(out, "      \"est_error_max\": {},", m.est_error_max);
        let _ = writeln!(out, "      \"cache_hits\": {},", m.cache_hits);
        let _ = writeln!(out, "      \"cache_misses\": {},", m.cache_misses);
        let _ = writeln!(
            out,
            "      \"cache_invalidations\": {},",
            m.cache_invalidations
        );
        let _ = writeln!(out, "      \"work_ratio\": {:.6},", m.work_ratio());
        let _ = writeln!(out, "      \"hit_rate\": {:.6},", m.hit_rate());
        let _ = writeln!(out, "      \"adaptive_ms\": {:.3},", m.adaptive_ms);
        let _ = writeln!(out, "      \"static_ms\": {:.3},", m.static_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes an adaptive-execution report to `path` (creating parent
/// directories).
pub fn write_adaptive_json(
    path: &Path,
    bench: &str,
    metrics: &[AdaptiveMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_adaptive_json(bench, metrics))
}

/// Parses a report produced by [`render_adaptive_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_adaptive_json(text: &str) -> Option<(String, Vec<AdaptiveMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<AdaptiveMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(AdaptiveMetric {
                    name: value.trim_matches('"').to_owned(),
                    adaptive_rows: 0,
                    static_rows: 0,
                    replans_triggered: 0,
                    est_error_max: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    cache_invalidations: 0,
                    adaptive_ms: 0.0,
                    static_ms: 0.0,
                    equal: false,
                });
            }
            "adaptive_rows" => cur.as_mut()?.adaptive_rows = value.parse().ok()?,
            "static_rows" => cur.as_mut()?.static_rows = value.parse().ok()?,
            "replans_triggered" => cur.as_mut()?.replans_triggered = value.parse().ok()?,
            "est_error_max" => cur.as_mut()?.est_error_max = value.parse().ok()?,
            "cache_hits" => cur.as_mut()?.cache_hits = value.parse().ok()?,
            "cache_misses" => cur.as_mut()?.cache_misses = value.parse().ok()?,
            "cache_invalidations" => cur.as_mut()?.cache_invalidations = value.parse().ok()?,
            "work_ratio" | "hit_rate" => {} // derived; recomputed
            "adaptive_ms" => cur.as_mut()?.adaptive_ms = value.parse().ok()?,
            "static_ms" => cur.as_mut()?.static_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// One entry of the `BENCH_10.json` report: the counters of one
/// schedule-enumeration sweep over a fixed concurrency scenario (see
/// `provabs_bench::sched`).
///
/// Unlike the perf gates, the diff here is **exact**: `schedules`,
/// `pruned` and `decisions` are pure functions of the scenario's
/// synchronization structure (deterministic shard routing, single-key
/// touched sets, pinned explorer config), so any drift means the
/// concurrency seam itself changed and a human must re-emit the baseline.
/// `mutant/*` scenarios seed a publication-ordering bug and must report
/// `caught == true`; healthy scenarios must report `complete == true`
/// (the sweep was exhaustive, not truncated by a cap).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedMetric {
    /// Scenario name, e.g. `session/publish-2r1w` or
    /// `mutant/plan-fence-dropped`.
    pub name: String,
    /// Schedules the explorer ran to completion or violation.
    pub schedules: u64,
    /// Schedules abandoned by the sleep-set / preemption-bound reduction.
    pub pruned: u64,
    /// Total scheduling decisions across all schedules.
    pub decisions: u64,
    /// Whether the sweep enumerated every schedule (no cap hit).
    pub complete: bool,
    /// Whether the scenario seeds a bug the sweep is supposed to find.
    pub expect_violation: bool,
    /// Whether the sweep reported a violation.
    pub caught: bool,
    /// Wall time of the sweep, milliseconds (informational).
    pub run_ms: f64,
}

/// Serializes a schedule-sweep report in the same hand-rolled
/// line-oriented shape as [`render_bench_json`].
pub fn render_sched_json(bench: &str, metrics: &[SchedMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"schedules\": {},", m.schedules);
        let _ = writeln!(out, "      \"pruned\": {},", m.pruned);
        let _ = writeln!(out, "      \"decisions\": {},", m.decisions);
        let _ = writeln!(out, "      \"complete\": {},", m.complete);
        let _ = writeln!(out, "      \"expect_violation\": {},", m.expect_violation);
        let _ = writeln!(out, "      \"caught\": {},", m.caught);
        let _ = writeln!(out, "      \"run_ms\": {:.3}", m.run_ms);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a schedule-sweep report to `path` (creating parent directories).
pub fn write_sched_json(path: &Path, bench: &str, metrics: &[SchedMetric]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_sched_json(bench, metrics))
}

/// Parses a report produced by [`render_sched_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_sched_json(text: &str) -> Option<(String, Vec<SchedMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<SchedMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(SchedMetric {
                    name: value.trim_matches('"').to_owned(),
                    schedules: 0,
                    pruned: 0,
                    decisions: 0,
                    complete: false,
                    expect_violation: false,
                    caught: false,
                    run_ms: 0.0,
                });
            }
            "schedules" => cur.as_mut()?.schedules = value.parse().ok()?,
            "pruned" => cur.as_mut()?.pruned = value.parse().ok()?,
            "decisions" => cur.as_mut()?.decisions = value.parse().ok()?,
            "complete" => cur.as_mut()?.complete = value.parse().ok()?,
            "expect_violation" => cur.as_mut()?.expect_violation = value.parse().ok()?,
            "caught" => cur.as_mut()?.caught = value.parse().ok()?,
            "run_ms" => cur.as_mut()?.run_ms = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// Parses a report produced by [`render_storage_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_storage_json(text: &str) -> Option<(String, Vec<StorageMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<StorageMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(StorageMetric {
                    name: value.trim_matches('"').to_owned(),
                    probes: 0,
                    id_probe_bytes: 0,
                    value_probe_bytes: 0,
                    id_moved_bytes: 0,
                    value_moved_bytes: 0,
                    engine_ms: 0.0,
                    oracle_ms: 0.0,
                    equal: false,
                });
            }
            "probes" => cur.as_mut()?.probes = value.parse().ok()?,
            "id_probe_bytes" => cur.as_mut()?.id_probe_bytes = value.parse().ok()?,
            "value_probe_bytes" => cur.as_mut()?.value_probe_bytes = value.parse().ok()?,
            "id_moved_bytes" => cur.as_mut()?.id_moved_bytes = value.parse().ok()?,
            "value_moved_bytes" => cur.as_mut()?.value_moved_bytes = value.parse().ok()?,
            "work_ratio" | "moved_ratio" => {} // derived; recomputed
            "engine_ms" => cur.as_mut()?.engine_ms = value.parse().ok()?,
            "oracle_ms" => cur.as_mut()?.oracle_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// Parses a report produced by [`render_intern_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_intern_json(text: &str) -> Option<(String, Vec<InternMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<InternMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(InternMetric {
                    name: value.trim_matches('"').to_owned(),
                    cached_work: 0,
                    owned_work: 0,
                    memo_hits: 0,
                    memo_misses: 0,
                    cached_ms: 0.0,
                    owned_ms: 0.0,
                    equal: false,
                });
            }
            "cached_work" => cur.as_mut()?.cached_work = value.parse().ok()?,
            "owned_work" => cur.as_mut()?.owned_work = value.parse().ok()?,
            "memo_hits" => cur.as_mut()?.memo_hits = value.parse().ok()?,
            "memo_misses" => cur.as_mut()?.memo_misses = value.parse().ok()?,
            "work_ratio" | "hit_rate" => {} // derived; recomputed
            "cached_ms" => cur.as_mut()?.cached_ms = value.parse().ok()?,
            "owned_ms" => cur.as_mut()?.owned_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// Parses a report produced by [`render_bench_json`] (line-oriented: one
/// `"key": value` pair per line). Returns `(bench name, entries)`; `None`
/// on any malformed line. Not a general JSON parser — exactly the shape the
/// writer emits, which is all the CI gate needs offline.
pub fn parse_bench_json(text: &str) -> Option<(String, Vec<BenchMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<BenchMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(BenchMetric {
                    name: value.trim_matches('"').to_owned(),
                    delta_rows: 0,
                    full_rows: 0,
                    delta_derivations: 0,
                    full_derivations: 0,
                    delta_ms: 0.0,
                    full_ms: 0.0,
                    equal: false,
                });
            }
            "delta_rows" => cur.as_mut()?.delta_rows = value.parse().ok()?,
            "full_rows" => cur.as_mut()?.full_rows = value.parse().ok()?,
            "delta_derivations" => cur.as_mut()?.delta_derivations = value.parse().ok()?,
            "full_derivations" => cur.as_mut()?.full_derivations = value.parse().ok()?,
            "work_ratio" => {} // derived; recomputed from the counters
            "delta_ms" => cur.as_mut()?.delta_ms = value.parse().ok()?,
            "full_ms" => cur.as_mut()?.full_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// One entry of the `BENCH_6.json` report: the page I/O the durable storage
/// layer pays to *reopen* a persisted database next to the analytic byte
/// cost of *rebuilding* the same logical state from scratch, counted by the
/// VFS and the pager themselves.
///
/// `reopen_bytes / rebuild_bytes` is the machine-independent read-work
/// ratio the CI gate diffs (acceptance bar: ≤ 0.5, i.e. warm reopen must at
/// least halve the work of a cold rebuild). Both counters depend only on
/// database content, page size, and the deterministic churn stream — never
/// on the runner. Wall-clock columns are carried for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityMetric {
    /// Scenario name, e.g. `reopen/checkpointed/insert-heavy`.
    pub name: String,
    /// Pages physically read from the VFS during `open` (header +
    /// snapshot decode; WAL bytes are counted in `reopen_bytes` only).
    pub pages_read: u64,
    /// Bytes physically read from the VFS during `open` (pages + WAL).
    pub reopen_bytes: u64,
    /// Analytic byte cost of re-ingesting the same logical state tuple by
    /// tuple (value moves + interning hashes + column slots + postings +
    /// labels).
    pub rebuild_bytes: u64,
    /// WAL transactions replayed on top of the snapshot during `open`.
    pub wal_txns_replayed: u64,
    /// Fsyncs the persisted workload issued (create + batches +
    /// checkpoints) — the durability price of the write path.
    pub workload_fsyncs: u64,
    /// Wall time of the reopen, milliseconds (informational).
    pub reopen_ms: f64,
    /// Wall time of the in-memory rebuild, milliseconds (informational).
    pub rebuild_ms: f64,
    /// Whether the recovered database (and the rebuilt one) matched the
    /// in-memory oracle bit for bit (`Database::same_state`).
    pub equal: bool,
}

impl DurabilityMetric {
    /// Reopen read work as a fraction of the rebuild cost (lower is
    /// better; the acceptance bar is ≤ 0.5).
    pub fn work_ratio(&self) -> f64 {
        self.reopen_bytes as f64 / self.rebuild_bytes.max(1) as f64
    }
}

/// Serializes a durability report in the same hand-rolled line-oriented
/// shape as [`render_bench_json`].
pub fn render_durability_json(bench: &str, metrics: &[DurabilityMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"pages_read\": {},", m.pages_read);
        let _ = writeln!(out, "      \"reopen_bytes\": {},", m.reopen_bytes);
        let _ = writeln!(out, "      \"rebuild_bytes\": {},", m.rebuild_bytes);
        let _ = writeln!(out, "      \"wal_txns_replayed\": {},", m.wal_txns_replayed);
        let _ = writeln!(out, "      \"workload_fsyncs\": {},", m.workload_fsyncs);
        let _ = writeln!(out, "      \"work_ratio\": {:.6},", m.work_ratio());
        let _ = writeln!(out, "      \"reopen_ms\": {:.3},", m.reopen_ms);
        let _ = writeln!(out, "      \"rebuild_ms\": {:.3},", m.rebuild_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a durability report to `path` (creating parent directories).
pub fn write_durability_json(
    path: &Path,
    bench: &str,
    metrics: &[DurabilityMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_durability_json(bench, metrics))
}

/// Parses a report produced by [`render_durability_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_durability_json(text: &str) -> Option<(String, Vec<DurabilityMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<DurabilityMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(DurabilityMetric {
                    name: value.trim_matches('"').to_owned(),
                    pages_read: 0,
                    reopen_bytes: 0,
                    rebuild_bytes: 0,
                    wal_txns_replayed: 0,
                    workload_fsyncs: 0,
                    reopen_ms: 0.0,
                    rebuild_ms: 0.0,
                    equal: false,
                });
            }
            "pages_read" => cur.as_mut()?.pages_read = value.parse().ok()?,
            "reopen_bytes" => cur.as_mut()?.reopen_bytes = value.parse().ok()?,
            "rebuild_bytes" => cur.as_mut()?.rebuild_bytes = value.parse().ok()?,
            "wal_txns_replayed" => cur.as_mut()?.wal_txns_replayed = value.parse().ok()?,
            "workload_fsyncs" => cur.as_mut()?.workload_fsyncs = value.parse().ok()?,
            "work_ratio" => {} // derived; recomputed
            "reopen_ms" => cur.as_mut()?.reopen_ms = value.parse().ok()?,
            "rebuild_ms" => cur.as_mut()?.rebuild_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// One entry of the `BENCH_7.json` report: deterministic work counters of
/// a vectorized block-at-a-time evaluation next to the scalar execution of
/// the *same query under the same plan* — probe-hash bytes fed to hash
/// lookups and id bytes moved through bindings/outputs, counted by the
/// engine itself ([`EvalWork`](provabs_relational::EvalWork)), plus the
/// block engine's own counters (blocks emitted, selection-vector
/// survivors, gallop steps).
///
/// `block_probe_bytes / scalar_probe_bytes` and `block_moved_bytes /
/// scalar_moved_bytes` are the machine-independent ratios the CI gate
/// diffs (acceptance bar: ≤ 0.5 each — the block pipeline must at least
/// halve both the per-binding hash work and the bytes moved). Wall-clock
/// columns are carried for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorizedMetric {
    /// Scenario name, e.g. `eval/TPCH-Q3` or `eval/IMDB-Q2`.
    pub name: String,
    /// Index probes the block engine issued (sorted-index lookups).
    pub block_probes: u64,
    /// Hash probes the scalar engine issued for the same evaluation.
    pub scalar_probes: u64,
    /// Bytes the block engine fed to hash probes (constants only — the
    /// per-binding work moved into sorted merges).
    pub block_probe_bytes: u64,
    /// Bytes the scalar engine fed to hash probes (4 per binding probe).
    pub scalar_probe_bytes: u64,
    /// Id bytes the block engine moved (8 per selection survivor, 4 per
    /// output key column).
    pub block_moved_bytes: u64,
    /// Id bytes the scalar engine moved into bindings and outputs.
    pub scalar_moved_bytes: u64,
    /// Blocks the pipeline emitted.
    pub blocks_emitted: u64,
    /// Rows that survived selection vectors across all blocks.
    pub selection_survivors: u64,
    /// Galloping-search steps spent in sorted merges.
    pub gallop_steps: u64,
    /// Wall time of the block run, milliseconds (informational).
    pub block_ms: f64,
    /// Wall time of the scalar run, milliseconds (informational).
    pub scalar_ms: f64,
    /// Whether block, scalar and the naive owned-value oracle agreed
    /// bit-for-bit.
    pub equal: bool,
}

impl VectorizedMetric {
    /// Block probe-hash bytes as a fraction of scalar probe-hash bytes
    /// (lower is better; the acceptance bar is ≤ 0.5).
    pub fn probe_ratio(&self) -> f64 {
        self.block_probe_bytes as f64 / self.scalar_probe_bytes.max(1) as f64
    }

    /// Block moved bytes as a fraction of scalar moved bytes.
    pub fn moved_ratio(&self) -> f64 {
        self.block_moved_bytes as f64 / self.scalar_moved_bytes.max(1) as f64
    }
}

/// Serializes a vectorized-comparison report in the same hand-rolled
/// line-oriented shape as [`render_bench_json`].
pub fn render_vectorized_json(bench: &str, metrics: &[VectorizedMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"block_probes\": {},", m.block_probes);
        let _ = writeln!(out, "      \"scalar_probes\": {},", m.scalar_probes);
        let _ = writeln!(out, "      \"block_probe_bytes\": {},", m.block_probe_bytes);
        let _ = writeln!(
            out,
            "      \"scalar_probe_bytes\": {},",
            m.scalar_probe_bytes
        );
        let _ = writeln!(out, "      \"block_moved_bytes\": {},", m.block_moved_bytes);
        let _ = writeln!(
            out,
            "      \"scalar_moved_bytes\": {},",
            m.scalar_moved_bytes
        );
        let _ = writeln!(out, "      \"blocks_emitted\": {},", m.blocks_emitted);
        let _ = writeln!(
            out,
            "      \"selection_survivors\": {},",
            m.selection_survivors
        );
        let _ = writeln!(out, "      \"gallop_steps\": {},", m.gallop_steps);
        let _ = writeln!(out, "      \"probe_ratio\": {:.6},", m.probe_ratio());
        let _ = writeln!(out, "      \"moved_ratio\": {:.6},", m.moved_ratio());
        let _ = writeln!(out, "      \"block_ms\": {:.3},", m.block_ms);
        let _ = writeln!(out, "      \"scalar_ms\": {:.3},", m.scalar_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a vectorized-comparison report to `path` (creating parent
/// directories).
pub fn write_vectorized_json(
    path: &Path,
    bench: &str,
    metrics: &[VectorizedMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_vectorized_json(bench, metrics))
}

/// Parses a report produced by [`render_vectorized_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_vectorized_json(text: &str) -> Option<(String, Vec<VectorizedMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<VectorizedMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(VectorizedMetric {
                    name: value.trim_matches('"').to_owned(),
                    block_probes: 0,
                    scalar_probes: 0,
                    block_probe_bytes: 0,
                    scalar_probe_bytes: 0,
                    block_moved_bytes: 0,
                    scalar_moved_bytes: 0,
                    blocks_emitted: 0,
                    selection_survivors: 0,
                    gallop_steps: 0,
                    block_ms: 0.0,
                    scalar_ms: 0.0,
                    equal: false,
                });
            }
            "block_probes" => cur.as_mut()?.block_probes = value.parse().ok()?,
            "scalar_probes" => cur.as_mut()?.scalar_probes = value.parse().ok()?,
            "block_probe_bytes" => cur.as_mut()?.block_probe_bytes = value.parse().ok()?,
            "scalar_probe_bytes" => cur.as_mut()?.scalar_probe_bytes = value.parse().ok()?,
            "block_moved_bytes" => cur.as_mut()?.block_moved_bytes = value.parse().ok()?,
            "scalar_moved_bytes" => cur.as_mut()?.scalar_moved_bytes = value.parse().ok()?,
            "blocks_emitted" => cur.as_mut()?.blocks_emitted = value.parse().ok()?,
            "selection_survivors" => cur.as_mut()?.selection_survivors = value.parse().ok()?,
            "gallop_steps" => cur.as_mut()?.gallop_steps = value.parse().ok()?,
            "probe_ratio" | "moved_ratio" => {} // derived; recomputed
            "block_ms" => cur.as_mut()?.block_ms = value.parse().ok()?,
            "scalar_ms" => cur.as_mut()?.scalar_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

/// One entry of the `BENCH_8.json` report: deterministic counters of a
/// closed-loop run against the `provabsd` session service — requests
/// admitted/rejected/cancelled, writer transactions applied, epochs
/// published — next to the invariants the service promises (per-request
/// work stays within the budget, degraded mode serves reads with zero
/// writer progress, the final snapshot replays an oracle bit-for-bit).
///
/// Every counter is a pure function of the scenario seed and the service
/// configuration: the workload schedule, the churn stream, the injected
/// faults, and the budget cancellation point are all op-sequence driven,
/// never wall-clock driven — so the gate is immune to CI-runner noise.
/// `run_ms` is carried for humans.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetric {
    /// Scenario name, e.g. `closed-loop/zipf` or `degraded/readonly`.
    pub name: String,
    /// Operations the schedule issued (queries + update slots).
    pub operations: u64,
    /// Queries that completed within budget.
    pub completed: u64,
    /// Queries rejected by admission control (fail-fast `Overloaded`).
    pub rejected: u64,
    /// Queries cancelled by the deterministic work budget.
    pub cancelled: u64,
    /// Answer rows the completed queries returned.
    pub answer_rows: u64,
    /// Writer transactions durably committed.
    pub applied_txns: u64,
    /// Write attempts that failed fast because the writer was degraded.
    pub degraded_writes: u64,
    /// Snapshot epochs the writer published.
    pub epochs_published: u64,
    /// Bounded writer retries spent on transient storage faults.
    pub writer_retries: u64,
    /// Largest per-request derivation count any query actually performed.
    pub max_request_work: u64,
    /// The per-request work budget the scenario ran with.
    pub work_budget: u64,
    /// Wall time of the closed loop, milliseconds (informational).
    pub run_ms: f64,
    /// Whether the final pinned snapshot matched the oracle replay
    /// bit-for-bit (state and per-query answers + work counters).
    pub equal: bool,
}

impl ServiceMetric {
    /// Completed queries as a fraction of scheduled operations (higher is
    /// better; overload scenarios legitimately sit at 0).
    pub fn completion_ratio(&self) -> f64 {
        self.completed as f64 / self.operations.max(1) as f64
    }

    /// Peak per-request work as a fraction of the budget (must be ≤ 1:
    /// cancellation stops a request exactly at the cap, never past it).
    pub fn budget_ratio(&self) -> f64 {
        self.max_request_work as f64 / self.work_budget.max(1) as f64
    }
}

/// Serializes a service report in the same hand-rolled line-oriented shape
/// as [`render_bench_json`].
pub fn render_service_json(bench: &str, metrics: &[ServiceMetric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"operations\": {},", m.operations);
        let _ = writeln!(out, "      \"completed\": {},", m.completed);
        let _ = writeln!(out, "      \"rejected\": {},", m.rejected);
        let _ = writeln!(out, "      \"cancelled\": {},", m.cancelled);
        let _ = writeln!(out, "      \"answer_rows\": {},", m.answer_rows);
        let _ = writeln!(out, "      \"applied_txns\": {},", m.applied_txns);
        let _ = writeln!(out, "      \"degraded_writes\": {},", m.degraded_writes);
        let _ = writeln!(out, "      \"epochs_published\": {},", m.epochs_published);
        let _ = writeln!(out, "      \"writer_retries\": {},", m.writer_retries);
        let _ = writeln!(out, "      \"max_request_work\": {},", m.max_request_work);
        let _ = writeln!(out, "      \"work_budget\": {},", m.work_budget);
        let _ = writeln!(
            out,
            "      \"completion_ratio\": {:.6},",
            m.completion_ratio()
        );
        let _ = writeln!(out, "      \"budget_ratio\": {:.6},", m.budget_ratio());
        let _ = writeln!(out, "      \"run_ms\": {:.3},", m.run_ms);
        let _ = writeln!(out, "      \"equal\": {}", m.equal);
        out.push_str(if i + 1 < metrics.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a service report to `path` (creating parent directories).
pub fn write_service_json(
    path: &Path,
    bench: &str,
    metrics: &[ServiceMetric],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_service_json(bench, metrics))
}

/// Parses a report produced by [`render_service_json`]. Returns
/// `(bench name, entries)`; `None` on any malformed line.
pub fn parse_service_json(text: &str) -> Option<(String, Vec<ServiceMetric>)> {
    let mut bench = String::new();
    let mut entries = Vec::new();
    let mut cur: Option<ServiceMetric> = None;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || matches!(line, "{" | "}" | "[" | "]" | "\"entries\": [") {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "schema" => {}
            "bench" => bench = value.trim_matches('"').to_owned(),
            "name" => {
                if let Some(done) = cur.take() {
                    entries.push(done);
                }
                cur = Some(ServiceMetric {
                    name: value.trim_matches('"').to_owned(),
                    operations: 0,
                    completed: 0,
                    rejected: 0,
                    cancelled: 0,
                    answer_rows: 0,
                    applied_txns: 0,
                    degraded_writes: 0,
                    epochs_published: 0,
                    writer_retries: 0,
                    max_request_work: 0,
                    work_budget: 0,
                    run_ms: 0.0,
                    equal: false,
                });
            }
            "operations" => cur.as_mut()?.operations = value.parse().ok()?,
            "completed" => cur.as_mut()?.completed = value.parse().ok()?,
            "rejected" => cur.as_mut()?.rejected = value.parse().ok()?,
            "cancelled" => cur.as_mut()?.cancelled = value.parse().ok()?,
            "answer_rows" => cur.as_mut()?.answer_rows = value.parse().ok()?,
            "applied_txns" => cur.as_mut()?.applied_txns = value.parse().ok()?,
            "degraded_writes" => cur.as_mut()?.degraded_writes = value.parse().ok()?,
            "epochs_published" => cur.as_mut()?.epochs_published = value.parse().ok()?,
            "writer_retries" => cur.as_mut()?.writer_retries = value.parse().ok()?,
            "max_request_work" => cur.as_mut()?.max_request_work = value.parse().ok()?,
            "work_budget" => cur.as_mut()?.work_budget = value.parse().ok()?,
            "completion_ratio" | "budget_ratio" => {} // derived; recomputed
            "run_ms" => cur.as_mut()?.run_ms = value.parse().ok()?,
            "equal" => cur.as_mut()?.equal = value.parse().ok()?,
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        entries.push(done);
    }
    Some((bench, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            query: "TPCH-Q3".into(),
            param: "5".into(),
            runtime_ms: 12.5,
            found: true,
            privacy: 5,
            loi: 2.708,
            edges: 2,
            abstractions: 40,
            privacy_evals: 7,
            truncated: false,
            note: String::new(),
        }
    }

    #[test]
    fn table_contains_values() {
        let t = print_table("Fig 9", &[sample()]);
        assert!(t.contains("TPCH-Q3"));
        assert!(t.contains("12.50"));
        assert!(t.contains("2.708"));
    }

    #[test]
    fn bench_json_roundtrips() {
        let metrics = vec![
            BenchMetric {
                name: "TPCH-Q3/ins50".into(),
                delta_rows: 120,
                full_rows: 4800,
                delta_derivations: 6,
                full_derivations: 300,
                delta_ms: 0.42,
                full_ms: 3.5,
                equal: true,
            },
            BenchMetric {
                name: "TPCH-Q4/ins100".into(),
                delta_rows: 44,
                full_rows: 900,
                delta_derivations: 2,
                full_derivations: 80,
                delta_ms: 0.1,
                full_ms: 0.9,
                equal: true,
            },
        ];
        let text = render_bench_json("micro_updates", &metrics);
        let (bench, parsed) = parse_bench_json(&text).expect("parses");
        assert_eq!(bench, "micro_updates");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].work_ratio() < 0.1);
        assert_eq!(parse_bench_json("not json"), None);
    }

    #[test]
    fn intern_json_roundtrips() {
        let metrics = vec![
            InternMetric {
                name: "search/TPCH-Q3".into(),
                cached_work: 14,
                owned_work: 120,
                memo_hits: 106,
                memo_misses: 14,
                cached_ms: 3.5,
                owned_ms: 9.1,
                equal: true,
            },
            InternMetric {
                name: "eval/TPCH-Q4".into(),
                cached_work: 40,
                owned_work: 240,
                memo_hits: 200,
                memo_misses: 40,
                cached_ms: 0.4,
                owned_ms: 1.2,
                equal: true,
            },
        ];
        let text = render_intern_json("micro_intern", &metrics);
        let (bench, parsed) = parse_intern_json(&text).expect("parses");
        assert_eq!(bench, "micro_intern");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].work_ratio() < 0.5);
        assert!(metrics[0].hit_rate() > 0.8);
        assert_eq!(parse_intern_json("not json"), None);
    }

    #[test]
    fn storage_json_roundtrips() {
        let metrics = vec![
            StorageMetric {
                name: "eval/TPCH-Q3".into(),
                probes: 1200,
                id_probe_bytes: 4800,
                value_probe_bytes: 19200,
                id_moved_bytes: 2400,
                value_moved_bytes: 14400,
                engine_ms: 0.8,
                oracle_ms: 40.2,
                equal: true,
            },
            StorageMetric {
                name: "churn/TPCH-Q4".into(),
                probes: 90,
                id_probe_bytes: 360,
                value_probe_bytes: 1440,
                id_moved_bytes: 100,
                value_moved_bytes: 600,
                engine_ms: 0.1,
                oracle_ms: 2.0,
                equal: true,
            },
        ];
        let text = render_storage_json("micro_storage", &metrics);
        let (bench, parsed) = parse_storage_json(&text).expect("parses");
        assert_eq!(bench, "micro_storage");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].work_ratio() <= 0.5);
        assert!(metrics[0].moved_ratio() <= 0.5);
        assert_eq!(parse_storage_json("not json"), None);
    }

    #[test]
    fn vectorized_json_roundtrips() {
        let metrics = vec![
            VectorizedMetric {
                name: "eval/TPCH-Q3".into(),
                block_probes: 400,
                scalar_probes: 1200,
                block_probe_bytes: 16,
                scalar_probe_bytes: 4800,
                block_moved_bytes: 900,
                scalar_moved_bytes: 2400,
                blocks_emitted: 5,
                selection_survivors: 80,
                gallop_steps: 300,
                block_ms: 0.5,
                scalar_ms: 0.8,
                equal: true,
            },
            VectorizedMetric {
                name: "eval/IMDB-Q2".into(),
                block_probes: 30,
                scalar_probes: 90,
                block_probe_bytes: 8,
                scalar_probe_bytes: 360,
                block_moved_bytes: 40,
                scalar_moved_bytes: 100,
                blocks_emitted: 2,
                selection_survivors: 10,
                gallop_steps: 25,
                block_ms: 0.1,
                scalar_ms: 0.2,
                equal: true,
            },
        ];
        let text = render_vectorized_json("micro_vectorized", &metrics);
        let (bench, parsed) = parse_vectorized_json(&text).expect("parses");
        assert_eq!(bench, "micro_vectorized");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].probe_ratio() <= 0.5);
        assert!(metrics[0].moved_ratio() <= 0.5);
        assert_eq!(parse_vectorized_json("not json"), None);
    }

    #[test]
    fn planner_json_roundtrips() {
        let metrics = vec![
            PlannerMetric {
                name: "tpch/TPCH-Q3/adv".into(),
                planned_rows: 210,
                written_rows: 4100,
                planned_probes: 300,
                written_probes: 2500,
                atoms_reordered: 3,
                est_rows: 190,
                planned_ms: 0.4,
                written_ms: 5.0,
                equal: true,
            },
            PlannerMetric {
                name: "churn/TPCH-Q10/adv".into(),
                planned_rows: 44,
                written_rows: 900,
                planned_probes: 66,
                written_probes: 700,
                atoms_reordered: 2,
                est_rows: 40,
                planned_ms: 0.1,
                written_ms: 0.9,
                equal: true,
            },
        ];
        let text = render_planner_json("micro_planner", &metrics);
        let (bench, parsed) = parse_planner_json(&text).expect("parses");
        assert_eq!(bench, "micro_planner");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].work_ratio() <= 0.5);
        assert!(metrics[0].probe_ratio() <= 0.5);
        assert_eq!(parse_planner_json("not json"), None);
    }

    #[test]
    fn adaptive_json_roundtrips() {
        let metrics = vec![
            AdaptiveMetric {
                name: "corr-skew/s9".into(),
                adaptive_rows: 5_900,
                static_rows: 18_000,
                replans_triggered: 1,
                est_error_max: 16,
                cache_hits: 0,
                cache_misses: 0,
                cache_invalidations: 0,
                adaptive_ms: 0.8,
                static_ms: 2.4,
                equal: true,
            },
            AdaptiveMetric {
                name: "plan-cache/zipf".into(),
                adaptive_rows: 40_000,
                static_rows: 40_000,
                replans_triggered: 0,
                est_error_max: 0,
                cache_hits: 370,
                cache_misses: 20,
                cache_invalidations: 14,
                adaptive_ms: 30.0,
                static_ms: 30.0,
                equal: true,
            },
        ];
        let text = render_adaptive_json("micro_adaptive", &metrics);
        let (bench, parsed) = parse_adaptive_json(&text).expect("parses");
        assert_eq!(bench, "micro_adaptive");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].work_ratio() <= 0.5);
        assert_eq!(metrics[0].hit_rate(), 0.0);
        assert!(metrics[1].hit_rate() >= 0.9);
        assert_eq!(parse_adaptive_json("not json"), None);
    }

    #[test]
    fn durability_json_roundtrips() {
        let metrics = vec![
            DurabilityMetric {
                name: "reopen/checkpointed/insert-heavy".into(),
                pages_read: 120,
                reopen_bytes: 490_000,
                rebuild_bytes: 2_100_000,
                wal_txns_replayed: 0,
                workload_fsyncs: 14,
                reopen_ms: 1.8,
                rebuild_ms: 9.5,
                equal: true,
            },
            DurabilityMetric {
                name: "reopen/wal-tail/delete-heavy".into(),
                pages_read: 110,
                reopen_bytes: 460_000,
                rebuild_bytes: 1_900_000,
                wal_txns_replayed: 4,
                workload_fsyncs: 10,
                reopen_ms: 1.6,
                rebuild_ms: 8.8,
                equal: true,
            },
        ];
        let text = render_durability_json("micro_durability", &metrics);
        let (bench, parsed) = parse_durability_json(&text).expect("parses");
        assert_eq!(bench, "micro_durability");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].work_ratio() <= 0.5);
        assert_eq!(parse_durability_json("not json"), None);
    }

    #[test]
    fn service_json_roundtrips() {
        let metrics = vec![
            ServiceMetric {
                name: "closed-loop/zipf".into(),
                operations: 48,
                completed: 40,
                rejected: 0,
                cancelled: 0,
                answer_rows: 9000,
                applied_txns: 6,
                degraded_writes: 0,
                epochs_published: 6,
                writer_retries: 0,
                max_request_work: 5000,
                work_budget: 1 << 20,
                run_ms: 12.0,
                equal: true,
            },
            ServiceMetric {
                name: "overload/admission".into(),
                operations: 48,
                completed: 0,
                rejected: 42,
                cancelled: 0,
                answer_rows: 0,
                applied_txns: 6,
                degraded_writes: 0,
                epochs_published: 6,
                writer_retries: 0,
                max_request_work: 0,
                work_budget: 1 << 20,
                run_ms: 3.0,
                equal: true,
            },
        ];
        let text = render_service_json("micro_service", &metrics);
        let (bench, parsed) = parse_service_json(&text).expect("parses");
        assert_eq!(bench, "micro_service");
        assert_eq!(parsed, metrics);
        assert!(metrics[0].budget_ratio() <= 1.0);
        assert!(metrics[0].completion_ratio() > 0.8);
        assert_eq!(metrics[1].completion_ratio(), 0.0);
        assert_eq!(parse_service_json("not json"), None);
    }

    #[test]
    fn sched_json_roundtrips() {
        let metrics = vec![
            SchedMetric {
                name: "session/publish-2r1w".into(),
                schedules: 9,
                pruned: 19,
                decisions: 235,
                complete: true,
                expect_violation: false,
                caught: false,
                run_ms: 7.5,
            },
            SchedMetric {
                name: "mutant/plan-fence-dropped".into(),
                schedules: 4,
                pruned: 31,
                decisions: 742,
                complete: false,
                expect_violation: true,
                caught: true,
                run_ms: 11.0,
            },
        ];
        let text = render_sched_json("micro_sched", &metrics);
        let (bench, parsed) = parse_sched_json(&text).expect("parses");
        assert_eq!(bench, "micro_sched");
        assert_eq!(parsed, metrics);
        assert_eq!(parse_sched_json("not json"), None);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("provabs_report_test");
        write_csv(&dir, "fig9", &[sample()]).unwrap();
        let content = std::fs::read_to_string(dir.join("fig9.csv")).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.lines().nth(1).unwrap().starts_with("TPCH-Q3,5,"));
    }
}
