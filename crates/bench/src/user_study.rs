//! Simulated user study (Table 7, Figure 20).
//!
//! The paper's study gave 12 database-literate humans two tasks on
//! IMDB-Q3-style provenance: (1) infer the hidden query, (2) answer 10
//! hypothetical deletion questions. Humans are unavailable to this
//! reproduction, so both tasks are mechanized with the strongest strategy a
//! rational subject could apply (DESIGN.md §4):
//!
//! * **Identification** — a subject holding provenance reverse-engineers the
//!   CIM queries; the query is *identified* iff exactly one CIM query exists
//!   and it specializes the original (equal up to constants the two example
//!   rows happen to share — all a subject could ever determine from two
//!   rows). Group A sees raw provenance, Group B the optimal abstraction.
//! * **Hypothetical questions** — "does output row r survive deleting the
//!   tuples matching predicate P?". A subject holding raw provenance reads
//!   the answer off the monomial. With abstracted provenance the answer is
//!   determined only when every leaf below each abstracted node agrees with
//!   the predicate; otherwise the subject cannot answer and scores an error.

use provabs_core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use provabs_core::search::{find_optimal_abstraction, SearchConfig};
use provabs_core::{AbsRow, Bound, Sym};
use provabs_datagen::imdb::{self, ImdbConfig};
use provabs_datagen::kexample_for;
use provabs_relational::{Database, Value};
use provabs_reveng::{contained_in, ContainmentMode};
use provabs_semiring::AnnotId;

/// The outcome of the simulated study.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Trials where the raw-provenance subject identified the query.
    pub group_a_identified: usize,
    /// Trials where the abstracted-provenance subject identified the query.
    pub group_b_identified: usize,
    /// Number of trials per group.
    pub trials: usize,
    /// Per-question correct counts for group A (length 10).
    pub group_a_correct: Vec<usize>,
    /// Per-question correct counts for group B (length 10).
    pub group_b_correct: Vec<usize>,
}

impl StudyOutcome {
    /// Average correct answers out of 10 for group A.
    pub fn group_a_avg(&self) -> f64 {
        self.group_a_correct.iter().sum::<usize>() as f64 / self.trials as f64
    }

    /// Average correct answers out of 10 for group B.
    pub fn group_b_avg(&self) -> f64 {
        self.group_b_correct.iter().sum::<usize>() as f64 / self.trials as f64
    }
}

/// A hypothetical deletion question: a human-readable description plus the
/// deletion predicate over database tuples.
struct Question {
    #[allow(dead_code)]
    text: &'static str,
    predicate: fn(&Database, AnnotId) -> bool,
}

fn questions() -> Vec<Question> {
    fn tuple_field(db: &Database, a: AnnotId, rel_name: &str, col: usize) -> Option<Value> {
        let (rel, t) = db.tuple_by_annot(a)?;
        (db.schema().relation_name(rel) == rel_name).then(|| t[col].clone())
    }
    vec![
        Question {
            text: "delete all Action genre tuples",
            predicate: |db, a| tuple_field(db, a, "Genre", 1) == Some(Value::str("Action")),
        },
        Question {
            text: "delete all Comedy genre tuples",
            predicate: |db, a| tuple_field(db, a, "Genre", 1) == Some(Value::str("Comedy")),
        },
        Question {
            text: "delete movies released after 1990",
            predicate: |db, a| tuple_field(db, a, "Movie", 2).and_then(|v| v.as_int()) > Some(1990),
        },
        Question {
            text: "delete movies released before 1980",
            predicate: |db, a| matches!(tuple_field(db, a, "Movie", 2).and_then(|v| v.as_int()), Some(y) if y < 1980),
        },
        Question {
            text: "delete people born before 1970",
            predicate: |db, a| matches!(tuple_field(db, a, "Person", 2).and_then(|v| v.as_int()), Some(y) if y < 1970),
        },
        Question {
            text: "delete people born after 1985",
            predicate: |db, a| matches!(tuple_field(db, a, "Person", 2).and_then(|v| v.as_int()), Some(y) if y > 1985),
        },
        Question {
            text: "delete every cast edge",
            predicate: |db, a| {
                db.tuple_by_annot(a)
                    .is_some_and(|(rel, _)| db.schema().relation_name(rel) == "CastIn")
            },
        },
        Question {
            text: "delete all director edges",
            predicate: |db, a| {
                db.tuple_by_annot(a)
                    .is_some_and(|(rel, _)| db.schema().relation_name(rel) == "Directs")
            },
        },
        Question {
            text: "delete US people",
            predicate: |db, a| tuple_field(db, a, "Person", 3) == Some(Value::str("USA")),
        },
        Question {
            text: "delete movies released exactly in 1995",
            predicate: |db, a| {
                tuple_field(db, a, "Movie", 2).and_then(|v| v.as_int()) == Some(1995)
            },
        },
    ]
}

/// Answer of a subject holding abstracted provenance: `Some(survives)` when
/// determined, `None` when the abstraction hides the answer.
fn abstracted_answer(
    db: &Database,
    bound: &Bound<'_>,
    row: &AbsRow,
    deleted: &dyn Fn(&Database, AnnotId) -> bool,
) -> Option<bool> {
    let mut any_unknown = false;
    for sym in row.syms.iter() {
        match sym {
            Sym::Leaf(a) => {
                if deleted(db, *a) {
                    return Some(false); // a known participant dies
                }
            }
            Sym::Abs(node) => {
                let leaves = bound.tree.leaves_under(*node);
                let all_deleted = leaves.iter().all(|&l| deleted(db, l));
                let none_deleted = leaves.iter().all(|&l| !deleted(db, l));
                if all_deleted {
                    return Some(false);
                }
                if !none_deleted {
                    any_unknown = true;
                }
            }
        }
    }
    if any_unknown {
        None
    } else {
        Some(true)
    }
}

/// Runs the simulated study: `trials` K-examples drawn from the IMDB-Q3
/// workload (bacon-number-1 actors), privacy threshold 2, optimal
/// abstractions from Algorithm 2.
pub fn run_user_study(trials: usize, seed: u64) -> StudyOutcome {
    let cfg = ImdbConfig {
        num_people: 250,
        num_movies: 200,
        cast_per_movie: 5,
        seed,
    };
    let (db_proto, rels) = imdb::generate(&cfg);
    let q3 = imdb::imdb_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "IMDB-Q3")
        .unwrap();
    let qs = questions();
    let mut outcome = StudyOutcome {
        group_a_identified: 0,
        group_b_identified: 0,
        trials: 0,
        group_a_correct: vec![0; qs.len()],
        group_b_correct: vec![0; qs.len()],
    };
    // Each trial uses a different pair of output rows; shrink the trial
    // count if the workload yields fewer rows at this scale.
    let mut wanted = 2 * trials;
    let full = loop {
        match kexample_for(&db_proto, &q3.query, wanted) {
            Some(ex) => break ex,
            None if wanted > 2 => wanted -= 2,
            None => break Default::default(),
        }
    };
    for t in 0..trials {
        if full.len() < 2 * (t + 1) {
            break;
        }
        let ex = provabs_relational::KExample {
            rows: full.rows[2 * t..2 * t + 2].to_vec(),
        };
        let mut db = db_proto.clone();
        let tree = imdb::imdb_tree(&mut db, &rels);
        let Ok(bound) = Bound::new(&db, &tree, &ex) else {
            continue;
        };
        outcome.trials += 1;
        // A subject's reconstruction candidates from a set of consistent
        // queries: the CIM queries when some exist, otherwise the minimal
        // consistent queries (a human facing, e.g., a ground self-join atom
        // would still write the evident query down). Identified = exactly
        // one candidate and it specializes the original.
        let identifies = |queries: &[provabs_relational::Cq]| {
            let connected: Vec<provabs_relational::Cq> = queries
                .iter()
                .filter(|q| q.is_connected())
                .cloned()
                .collect();
            let pool: &[provabs_relational::Cq] = if connected.is_empty() {
                queries
            } else {
                &connected
            };
            let minimal = provabs_reveng::minimal_queries(pool, ContainmentMode::Bijective);
            minimal.len() == 1 && contained_in(&minimal[0], &q3.query, ContainmentMode::Classical)
        };
        // --- Task 1, group A: raw provenance identification.
        let raw_resolved = ex.resolve(&db).unwrap_or_default();
        let raw_frontier = provabs_reveng::find_consistent_queries(
            &raw_resolved,
            &provabs_reveng::RevOptions::default(),
        );
        if identifies(&raw_frontier) {
            outcome.group_a_identified += 1;
        }
        let cache = PrivacyCache::new();
        let pcfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        // --- Task 1, group B: abstracted provenance.
        let search = find_optimal_abstraction(
            &bound,
            &SearchConfig {
                privacy: PrivacyConfig {
                    threshold: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let Some(best) = search.best else {
            continue; // no abstraction found: skip QA for this trial
        };
        let abs_rows = best.abstraction.apply(&bound).rows;
        let abs_out = compute_privacy(&bound, &abs_rows, &pcfg, &cache);
        if identifies(&abs_out.cim) {
            outcome.group_b_identified += 1;
        }
        // --- Task 2: hypothetical questions on the first row.
        for (qi, q) in qs.iter().enumerate() {
            let truth = ex.rows[0]
                .monomial
                .support()
                .all(|a| !(q.predicate)(&db, a));
            // Group A reads the answer from the raw monomial.
            let a_answer = truth;
            if a_answer == truth {
                outcome.group_a_correct[qi] += 1;
            }
            // Group B derives it from the abstracted row when determined.
            if let Some(b_answer) =
                abstracted_answer(&db, &bound, &abs_rows[0], &|db, a| (q.predicate)(db, a))
            {
                if b_answer == truth {
                    outcome.group_b_correct[qi] += 1;
                }
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_shapes_match_table7() {
        // Group A always identifies; group B never; QA accuracy A ≥ B with
        // B still high (Table 7: 100% vs 0%, 9.6 vs 8.5 of 10).
        let out = run_user_study(3, 11);
        assert!(out.trials >= 1);
        assert_eq!(
            out.group_a_identified, out.trials,
            "raw provenance must identify"
        );
        assert_eq!(out.group_b_identified, 0, "abstraction must hide the query");
        let a = out.group_a_avg();
        let b = out.group_b_avg();
        assert!((a - 10.0).abs() < 1e-9);
        assert!(b <= a);
        assert!(
            b >= 5.0,
            "abstracted provenance should stay useful, got {b}"
        );
    }
}
