//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! figures [all|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|loi|table3|table7] [--quick]
//! ```
//!
//! Results are printed as aligned tables (one series point per row) and
//! written as CSV under `results/`. Figures 9/10/11 (and 12/13, 14/15)
//! share a run: the same searches produce the runtime, abstraction-size and
//! LOI series.

use provabs_bench::figures;
use provabs_bench::user_study::run_user_study;
use provabs_bench::{print_table, write_csv, HarnessCaps, Measurement, ScenarioSettings};
use std::path::PathBuf;

struct Args {
    which: Vec<String>,
    quick: bool,
}

fn parse_args() -> Args {
    let mut which = Vec::new();
    let mut quick = false;
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            quick = true;
        } else {
            which.push(a);
        }
    }
    if which.is_empty() {
        which.push("all".to_owned());
    }
    Args { which, quick }
}

fn main() {
    let args = parse_args();
    let want = |name: &str| {
        args.which.iter().any(|w| w == name)
            || args.which.iter().any(|w| w == "all")
            // figure pairs/triples share runs
            || (name == "fig9" && args.which.iter().any(|w| w == "fig10" || w == "fig11"))
            || (name == "fig12" && args.which.iter().any(|w| w == "fig13"))
            || (name == "fig14" && args.which.iter().any(|w| w == "fig15"))
    };
    let settings = ScenarioSettings::default();
    let mut caps = HarnessCaps::default();
    // Optional overrides for slow machines / deeper reproductions.
    if let Some(ms) = std::env::var("PROVABS_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        caps.time_budget_ms = Some(ms);
    }
    if let Some(mc) = std::env::var("PROVABS_MAX_CONC")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        caps.max_concretizations = mc;
    }
    let out_dir = PathBuf::from("results");
    let emit = |name: &str, title: &str, rows: &[Measurement]| {
        println!("{}", print_table(title, rows));
        if let Err(e) = write_csv(&out_dir, name, rows) {
            eprintln!("warning: could not write results/{name}.csv: {e}");
        }
    };

    if want("fig9") {
        let ks: Vec<usize> = if args.quick {
            vec![2, 5, 10]
        } else {
            vec![2, 5, 8, 11, 14, 17, 20]
        };
        let rows = figures::fig09_to_11(&settings, &caps, &ks);
        emit(
            "fig09_10_11",
            "Figures 9-11: runtime / abstraction size / LOI vs privacy threshold",
            &rows,
        );
    }
    if want("fig12") {
        let leaves: Vec<usize> = if args.quick {
            vec![200, 600]
        } else {
            vec![100, 300, 900, 2700, 8100]
        };
        let rows = figures::fig12_13(&settings, &caps, &leaves);
        emit(
            "fig12_13",
            "Figures 12-13: runtime / abstraction size vs tree size (leaves)",
            &rows,
        );
    }
    if want("fig14") {
        let heights: Vec<u32> = if args.quick {
            vec![3, 5]
        } else {
            vec![2, 3, 4, 5, 6, 7, 8]
        };
        let rows = figures::fig14_15(&settings, &caps, &heights);
        emit(
            "fig14_15",
            "Figures 14-15: runtime / abstraction size vs tree height",
            &rows,
        );
    }
    if want("fig16") {
        let rows = figures::fig16(&settings, &caps);
        emit("fig16", "Figure 16: runtime vs number of joins", &rows);
    }
    if want("fig17") {
        let rows_counts: Vec<usize> = if args.quick {
            vec![2, 3]
        } else {
            vec![2, 3, 4, 5]
        };
        let rows = figures::fig17(&settings, &caps, &rows_counts);
        emit("fig17", "Figure 17: runtime vs K-example rows", &rows);
    }
    if want("fig18") {
        let ks: Vec<usize> = if args.quick {
            vec![2, 5]
        } else {
            vec![2, 5, 8, 11, 14]
        };
        let rows = figures::fig18(&settings, &caps, &ks);
        emit(
            "fig18",
            "Figure 18: LOI, our optimum vs compression baseline [24]",
            &rows,
        );
    }
    if want("fig19") {
        let rows = figures::fig19(&settings, &caps);
        emit(
            "fig19",
            "Figure 19: per-component runtime vs brute force (param = component)",
            &rows,
        );
        // Also print the speedups the paper reports.
        let mut by_query: std::collections::BTreeMap<String, Vec<&Measurement>> =
            Default::default();
        for m in &rows {
            by_query.entry(m.query.clone()).or_default().push(m);
        }
        println!("Speedups vs brute force:");
        for (q, ms) in by_query {
            if let Some(brute) = ms.iter().find(|m| m.param == "brute") {
                for m in &ms {
                    if m.param != "brute" {
                        println!(
                            "  {q} {:<12} {:>8.1}x",
                            m.param,
                            brute.runtime_ms / m.runtime_ms.max(1e-6)
                        );
                    }
                }
            }
        }
        println!();
    }
    if want("loi") {
        let rows = figures::loi_distribution(&settings, &caps);
        emit(
            "loi_distribution",
            "LOI distributions: uniform vs random weights (runtime insensitivity)",
            &rows,
        );
    }
    if want("table3") {
        let t = figures::table3();
        println!(
            "== Table 3: queries w.r.t. Exabs1 (paper: 14 consistent / 3 connected / 2 CIM) =="
        );
        println!(
            "frontier view: consistent {} / connected {} / CIM {}",
            t.frontier.0, t.frontier.1, t.frontier.2
        );
        println!(
            "closure view:  consistent {} / connected {} / CIM {}\n",
            t.closure.0, t.closure.1, t.closure.2
        );
    }
    if want("table7") {
        let trials = if args.quick { 2 } else { 6 };
        let out = run_user_study(trials, 11);
        println!("== Table 7 / Figure 20: simulated user study ==");
        println!(
            "identified original query: group A {}/{}  group B {}/{}",
            out.group_a_identified, out.trials, out.group_b_identified, out.trials
        );
        println!(
            "hypothetical QA (avg of 10): group A {:.1}  group B {:.1}",
            out.group_a_avg(),
            out.group_b_avg()
        );
        println!("per-question correct (A): {:?}", out.group_a_correct);
        println!("per-question correct (B): {:?}", out.group_b_correct);
        println!();
    }
}
