//! The perf-regression gate: emits and checks `BENCH_*.json` baselines for
//! the incremental update engine, the interned provenance arena, the
//! dictionary-encoded columnar storage layer, the cost-based query
//! planner, the durable paged storage layer, the vectorized block
//! execution pipeline, the snapshot-isolated session service, and the
//! adaptive execution layer (mid-join re-planning + plan cache).
//!
//! ```text
//! bench_gate [--bench NAME] --emit PATH
//! bench_gate [--bench NAME] --check BASELINE PATH
//! ```
//!
//! where `NAME` is one of `updates`, `intern`, `storage`, `planner`,
//! `durability`, `vectorized`, `service`, `adaptive`, `sched`. An unknown
//! name exits non-zero listing the known benches.
//!
//! `--bench updates` (the default) replays the [`UpdateSettings::ci_gate`]
//! delta-maintenance scenarios (`BENCH_2.json`); `--bench intern` runs the
//! [`InternSettings::ci_gate`] memoization comparison (`BENCH_3.json`);
//! `--bench storage` runs the [`StorageSettings::ci_gate`] columnar-engine
//! comparison (`BENCH_4.json`); `--bench planner` runs the
//! [`PlannerSettings::ci_gate`] planned-versus-written-order comparison on
//! adversarially-ordered workloads (`BENCH_5.json`); `--bench durability`
//! runs the [`DurabilitySettings::ci_gate`] reopen-versus-rebuild recovery
//! comparison (`BENCH_6.json`); `--bench vectorized` runs the
//! [`VectorizedSettings::ci_gate`] block-versus-scalar execution
//! comparison (`BENCH_7.json`); `--bench service` runs the
//! [`ServiceSettings::ci_gate`] closed-loop session-service scenarios
//! (`BENCH_8.json`); `--bench adaptive` runs the
//! [`AdaptiveSettings::ci_gate`] adaptive-versus-static comparison on
//! correlated-skew workloads plus the plan-cache closed loop
//! (`BENCH_9.json`); `--bench sched` runs the [`SchedSettings::ci_gate`]
//! schedule-enumeration sweeps over the engine's concurrency seams
//! (`BENCH_10.json`).
//!
//! The diff compares only deterministic work counters (rows examined,
//! derivations, rows re-abstracted, retained constructions, probe/moved
//! bytes, pages/bytes read on recovery): with the fixed gate
//! configurations they are identical across machines, so the gate is
//! immune to CI-runner noise. Wall-clock columns are carried in the report
//! for humans.
//!
//! Gate rules, per baseline entry:
//! * the entry must still exist in the current run;
//! * `equal` must hold (the fast path bit-for-bit matches the reference);
//! * the fast path must beat the reference outright — for `updates`,
//!   `delta_rows < full_rows` and `delta_derivations < full_derivations`;
//!   for `intern`, `cached_work * 2 <= owned_work` (the ≥ 2× reduction the
//!   arena promises); for `storage`, `id_probe_bytes * 2 <=
//!   value_probe_bytes` **and** `id_moved_bytes * 2 <= value_moved_bytes`
//!   (the ≥ 2× join-probe hash-work reduction the dictionary encoding
//!   promises); for `planner`, `planned_rows * 2 <= written_rows` (the
//!   ≥ 2× probe-work reduction the cost-based planner promises on the
//!   adversarially-ordered suite); for `durability`, `reopen_bytes * 2 <=
//!   rebuild_bytes` (warm reopen must at least halve the cold-rebuild
//!   work) and `pages_read` may not grow past the baseline's page budget;
//!   for `vectorized`, `block_probe_bytes * 2 <= scalar_probe_bytes`
//!   **and** `block_moved_bytes * 2 <= scalar_moved_bytes` (the ≥ 2×
//!   probe-hash and operator-boundary byte reductions the block pipeline
//!   promises); for `service`, `max_request_work <= work_budget`
//!   (admission + cancellation keep every request's work counters within
//!   budget), rejection/cancellation/degradation paths that fired in the
//!   baseline must still fire, a degraded writer must make zero progress,
//!   and the completion ratio may not drop past the tolerance; for
//!   `adaptive`, `adaptive_rows * 2 <= static_rows` with at least one
//!   re-plan fired on every `corr-skew/*` scenario (the ≥ 2× probe-work
//!   reduction mid-join re-planning promises on workloads whose planted
//!   statistics lie), and `plan-cache/*` scenarios must hold a ≥ 0.9 hit
//!   rate with epoch fences still retiring plans;
//! * `work_ratio` may not regress by more than [`TOLERANCE`] (relative)
//!   plus a small absolute slack.
//!
//! The gate fails closed: an empty baseline, or a current scenario absent
//! from the baseline (i.e. ungated), is itself a failure — re-emit the
//! baseline so every scenario is covered.
//!
//! Exit status: 0 clean, 1 regression, 2 usage/IO error.

use provabs_bench::{
    parse_adaptive_json, parse_bench_json, parse_durability_json, parse_intern_json,
    parse_planner_json, parse_sched_json, parse_service_json, parse_storage_json,
    parse_vectorized_json, run_adaptive_comparison, run_durability_comparison,
    run_intern_comparison, run_planner_comparison, run_sched_sweeps, run_service_comparison,
    run_storage_comparison, run_update_comparison, run_vectorized_comparison, write_adaptive_json,
    write_bench_json, write_durability_json, write_intern_json, write_planner_json,
    write_sched_json, write_service_json, write_storage_json, write_vectorized_json,
    AdaptiveMetric, AdaptiveSettings, BenchMetric, DurabilityMetric, DurabilitySettings,
    InternMetric, InternSettings, PlannerMetric, PlannerSettings, SchedMetric, SchedSettings,
    ServiceMetric, ServiceSettings, StorageMetric, StorageSettings, UpdateSettings,
    VectorizedMetric, VectorizedSettings,
};
use std::path::Path;
use std::process::ExitCode;

/// Allowed relative growth of `work_ratio` over the baseline.
const TOLERANCE: f64 = 0.15;
/// Absolute slack on top (keeps near-zero ratios from gating on noise).
const ABS_SLACK: f64 = 0.02;

/// Every bench name the gate knows, in the order the usage line lists
/// them — printed verbatim when an unknown `--bench` name is passed.
const KNOWN_BENCHES: &[&str] = &[
    "updates",
    "intern",
    "storage",
    "planner",
    "durability",
    "vectorized",
    "service",
    "adaptive",
    "sched",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate [--bench {}] --emit PATH | --check BASELINE PATH",
        KNOWN_BENCHES.join("|")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = if args.first().map(String::as_str) == Some("--bench") {
        if args.len() < 2 {
            return usage();
        }
        let which = args[1].clone();
        args.drain(0..2);
        which
    } else {
        "updates".to_owned()
    };
    match bench.as_str() {
        "updates" => drive_gate(&UPDATES_GATE, &args),
        "intern" => drive_gate(&INTERN_GATE, &args),
        "storage" => drive_gate(&STORAGE_GATE, &args),
        "planner" => drive_gate(&PLANNER_GATE, &args),
        "durability" => drive_gate(&DURABILITY_GATE, &args),
        "vectorized" => drive_gate(&VECTORIZED_GATE, &args),
        "service" => drive_gate(&SERVICE_GATE, &args),
        "adaptive" => drive_gate(&ADAPTIVE_GATE, &args),
        "sched" => drive_gate(&SCHED_GATE, &args),
        other => {
            eprintln!(
                "bench_gate: unknown bench '{other}'; known benches: {}",
                KNOWN_BENCHES.join(", ")
            );
            ExitCode::from(2)
        }
    }
}
/// The per-gate wiring: how to run the comparison, (de)serialize the
/// report, print a human summary, and judge the current run against a
/// baseline. Everything else — argument parsing, baseline IO, fail-closed
/// verdicts — is shared by [`drive_gate`], so a fix to the gate protocol
/// lands in one place for all four benches.
type ParseFn<M> = fn(&str) -> Option<(String, Vec<M>)>;

struct GateOps<M> {
    bench: &'static str,
    kind: &'static str,
    run: fn() -> Vec<M>,
    write: fn(&Path, &str, &[M]) -> std::io::Result<()>,
    parse: ParseFn<M>,
    print: fn(&[M]),
    check: fn(&[M], &[M]) -> Vec<String>,
}

fn drive_gate<M>(ops: &GateOps<M>, args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--emit") => {
            let [_, path] = args else {
                return usage();
            };
            let metrics = (ops.run)();
            if let Err(e) = (ops.write)(Path::new(path), ops.bench, &metrics) {
                eprintln!("bench_gate: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            (ops.print)(&metrics);
            println!("bench_gate: wrote {path}");
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let [_, baseline_path, out_path] = args else {
                return usage();
            };
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let Some((_, baseline)) = (ops.parse)(&baseline_text) else {
                eprintln!(
                    "bench_gate: baseline {baseline_path} is not {} report",
                    ops.kind
                );
                return ExitCode::from(2);
            };
            let current = (ops.run)();
            if let Err(e) = (ops.write)(Path::new(out_path), ops.bench, &current) {
                eprintln!("bench_gate: cannot write {out_path}: {e}");
                return ExitCode::from(2);
            }
            (ops.print)(&current);
            verdict((ops.check)(&baseline, &current), baseline.len())
        }
        _ => usage(),
    }
}

const UPDATES_GATE: GateOps<BenchMetric> = GateOps {
    bench: "micro_updates",
    kind: "a bench",
    run: || run_update_comparison(&UpdateSettings::ci_gate()),
    write: write_bench_json,
    parse: parse_bench_json,
    print: print_summary,
    check,
};

const INTERN_GATE: GateOps<InternMetric> = GateOps {
    bench: "micro_intern",
    kind: "an intern",
    run: || run_intern_comparison(&InternSettings::ci_gate()),
    write: write_intern_json,
    parse: parse_intern_json,
    print: print_intern_summary,
    check: check_intern,
};

const STORAGE_GATE: GateOps<StorageMetric> = GateOps {
    bench: "micro_storage",
    kind: "a storage",
    run: || run_storage_comparison(&StorageSettings::ci_gate()),
    write: write_storage_json,
    parse: parse_storage_json,
    print: print_storage_summary,
    check: check_storage,
};

const PLANNER_GATE: GateOps<PlannerMetric> = GateOps {
    bench: "micro_planner",
    kind: "a planner",
    run: || run_planner_comparison(&PlannerSettings::ci_gate()),
    write: write_planner_json,
    parse: parse_planner_json,
    print: print_planner_summary,
    check: check_planner,
};

const DURABILITY_GATE: GateOps<DurabilityMetric> = GateOps {
    bench: "micro_durability",
    kind: "a durability",
    run: || run_durability_comparison(&DurabilitySettings::ci_gate()),
    write: write_durability_json,
    parse: parse_durability_json,
    print: print_durability_summary,
    check: check_durability,
};

const VECTORIZED_GATE: GateOps<VectorizedMetric> = GateOps {
    bench: "micro_vectorized",
    kind: "a vectorized",
    run: || run_vectorized_comparison(&VectorizedSettings::ci_gate()),
    write: write_vectorized_json,
    parse: parse_vectorized_json,
    print: print_vectorized_summary,
    check: check_vectorized,
};

const SERVICE_GATE: GateOps<ServiceMetric> = GateOps {
    bench: "micro_service",
    kind: "a service",
    run: || run_service_comparison(&ServiceSettings::ci_gate()),
    write: write_service_json,
    parse: parse_service_json,
    print: print_service_summary,
    check: check_service,
};

const ADAPTIVE_GATE: GateOps<AdaptiveMetric> = GateOps {
    bench: "micro_adaptive",
    kind: "an adaptive",
    run: || run_adaptive_comparison(&AdaptiveSettings::ci_gate()),
    write: write_adaptive_json,
    parse: parse_adaptive_json,
    print: print_adaptive_summary,
    check: check_adaptive,
};

const SCHED_GATE: GateOps<SchedMetric> = GateOps {
    bench: "micro_sched",
    kind: "a sched",
    run: || run_sched_sweeps(&SchedSettings::ci_gate()),
    write: write_sched_json,
    parse: parse_sched_json,
    print: print_sched_summary,
    check: check_sched,
};

fn verdict(failures: Vec<String>, gated: usize) -> ExitCode {
    if failures.is_empty() {
        println!("bench_gate: OK ({gated} entries within tolerance)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_gate: REGRESSION: {f}");
        }
        ExitCode::FAILURE
    }
}

fn print_summary(metrics: &[BenchMetric]) {
    println!(
        "{:<18} {:>12} {:>12} {:>7} {:>10} {:>10} {:>6}",
        "scenario", "delta_rows", "full_rows", "ratio", "delta_ms", "full_ms", "equal"
    );
    for m in metrics {
        println!(
            "{:<18} {:>12} {:>12} {:>7.4} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.delta_rows,
            m.full_rows,
            m.work_ratio(),
            m.delta_ms,
            m.full_ms,
            m.equal
        );
    }
}

fn print_intern_summary(metrics: &[InternMetric]) {
    println!(
        "{:<18} {:>12} {:>12} {:>7} {:>8} {:>10} {:>10} {:>6}",
        "scenario",
        "cached_work",
        "owned_work",
        "ratio",
        "hit_rate",
        "cached_ms",
        "owned_ms",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<18} {:>12} {:>12} {:>7.4} {:>8.4} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.cached_work,
            m.owned_work,
            m.work_ratio(),
            m.hit_rate(),
            m.cached_ms,
            m.owned_ms,
            m.equal
        );
    }
}

fn print_storage_summary(metrics: &[StorageMetric]) {
    println!(
        "{:<16} {:>8} {:>12} {:>14} {:>7} {:>7} {:>10} {:>10} {:>6}",
        "scenario",
        "probes",
        "id_pr_bytes",
        "value_pr_bytes",
        "ratio",
        "moved",
        "engine_ms",
        "oracle_ms",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<16} {:>8} {:>12} {:>14} {:>7.4} {:>7.4} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.probes,
            m.id_probe_bytes,
            m.value_probe_bytes,
            m.work_ratio(),
            m.moved_ratio(),
            m.engine_ms,
            m.oracle_ms,
            m.equal
        );
    }
}

fn print_planner_summary(metrics: &[PlannerMetric]) {
    println!(
        "{:<20} {:>12} {:>12} {:>7} {:>7} {:>9} {:>9} {:>10} {:>10} {:>6}",
        "scenario",
        "planned_rows",
        "written_rows",
        "ratio",
        "probes",
        "reordered",
        "est_rows",
        "plan_ms",
        "written_ms",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<20} {:>12} {:>12} {:>7.4} {:>7.4} {:>9} {:>9} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.planned_rows,
            m.written_rows,
            m.work_ratio(),
            m.probe_ratio(),
            m.atoms_reordered,
            m.est_rows,
            m.planned_ms,
            m.written_ms,
            m.equal
        );
    }
}

fn print_durability_summary(metrics: &[DurabilityMetric]) {
    println!(
        "{:<34} {:>7} {:>12} {:>13} {:>7} {:>8} {:>7} {:>10} {:>10} {:>6}",
        "scenario",
        "pages",
        "reopen_bytes",
        "rebuild_bytes",
        "ratio",
        "replayed",
        "fsyncs",
        "reopen_ms",
        "rebuild_ms",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<34} {:>7} {:>12} {:>13} {:>7.4} {:>8} {:>7} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.pages_read,
            m.reopen_bytes,
            m.rebuild_bytes,
            m.work_ratio(),
            m.wal_txns_replayed,
            m.workload_fsyncs,
            m.reopen_ms,
            m.rebuild_ms,
            m.equal
        );
    }
}

fn check_durability(baseline: &[DurabilityMetric], current: &[DurabilityMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: recovered database no longer matches the in-memory oracle",
                cur.name
            ));
        }
        if cur.reopen_bytes * 2 > cur.rebuild_bytes {
            failures.push(format!(
                "{}: reopen read {} bytes vs rebuild {} — warm reopen no longer halves the work",
                cur.name, cur.reopen_bytes, cur.rebuild_bytes
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
        let page_budget = (base.pages_read as f64) * (1.0 + TOLERANCE) + 2.0;
        if (cur.pages_read as f64) > page_budget {
            failures.push(format!(
                "{}: {} pages read on reopen exceeds baseline {} (+{:.0}% & slack = {:.0})",
                cur.name,
                cur.pages_read,
                base.pages_read,
                TOLERANCE * 100.0,
                page_budget
            ));
        }
    }
    failures
}

fn check_planner(baseline: &[PlannerMetric], current: &[PlannerMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: planned evaluation no longer matches written-order / oracle output",
                cur.name
            ));
        }
        if cur.planned_rows * 2 > cur.written_rows {
            failures.push(format!(
                "{}: planned {} vs written {} rows — the planner no longer halves the probe work",
                cur.name, cur.planned_rows, cur.written_rows
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
        let allowed_probe = base.probe_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.probe_ratio() > allowed_probe {
            failures.push(format!(
                "{}: probe_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.probe_ratio(),
                base.probe_ratio(),
                TOLERANCE * 100.0,
                allowed_probe
            ));
        }
    }
    failures
}

fn check_storage(baseline: &[StorageMetric], current: &[StorageMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: columnar engine no longer matches the owned-value oracle",
                cur.name
            ));
        }
        if cur.id_probe_bytes * 2 > cur.value_probe_bytes {
            failures.push(format!(
                "{}: probe bytes {} vs owned {} — dictionary ids no longer halve the hash work",
                cur.name, cur.id_probe_bytes, cur.value_probe_bytes
            ));
        }
        if cur.id_moved_bytes * 2 > cur.value_moved_bytes {
            failures.push(format!(
                "{}: moved bytes {} vs owned {} — id bindings no longer halve the bytes moved",
                cur.name, cur.id_moved_bytes, cur.value_moved_bytes
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
        let allowed_moved = base.moved_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.moved_ratio() > allowed_moved {
            failures.push(format!(
                "{}: moved_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.moved_ratio(),
                base.moved_ratio(),
                TOLERANCE * 100.0,
                allowed_moved
            ));
        }
    }
    failures
}

fn print_vectorized_summary(metrics: &[VectorizedMetric]) {
    println!(
        "{:<16} {:>11} {:>13} {:>7} {:>11} {:>13} {:>7} {:>8} {:>8} {:>6}",
        "scenario",
        "blk_pr_bytes",
        "scl_pr_bytes",
        "ratio",
        "blk_moved",
        "scl_moved",
        "moved",
        "blocks",
        "gallops",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<16} {:>11} {:>13} {:>7.4} {:>11} {:>13} {:>7.4} {:>8} {:>8} {:>6}",
            m.name,
            m.block_probe_bytes,
            m.scalar_probe_bytes,
            m.probe_ratio(),
            m.block_moved_bytes,
            m.scalar_moved_bytes,
            m.moved_ratio(),
            m.blocks_emitted,
            m.gallop_steps,
            m.equal
        );
    }
}

fn check_vectorized(baseline: &[VectorizedMetric], current: &[VectorizedMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: block engine no longer matches the scalar engine / oracle",
                cur.name
            ));
        }
        if cur.block_probe_bytes * 2 > cur.scalar_probe_bytes {
            failures.push(format!(
                "{}: probe bytes {} vs scalar {} — the block pipeline no longer halves the hash work",
                cur.name, cur.block_probe_bytes, cur.scalar_probe_bytes
            ));
        }
        if cur.block_moved_bytes * 2 > cur.scalar_moved_bytes {
            failures.push(format!(
                "{}: moved bytes {} vs scalar {} — the block pipeline no longer halves the boundary traffic",
                cur.name, cur.block_moved_bytes, cur.scalar_moved_bytes
            ));
        }
        let allowed = base.probe_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.probe_ratio() > allowed {
            failures.push(format!(
                "{}: probe_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.probe_ratio(),
                base.probe_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
        let allowed_moved = base.moved_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.moved_ratio() > allowed_moved {
            failures.push(format!(
                "{}: moved_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.moved_ratio(),
                base.moved_ratio(),
                TOLERANCE * 100.0,
                allowed_moved
            ));
        }
    }
    failures
}

fn print_service_summary(metrics: &[ServiceMetric]) {
    println!(
        "{:<20} {:>5} {:>9} {:>8} {:>9} {:>6} {:>8} {:>6} {:>10} {:>9} {:>6}",
        "scenario",
        "ops",
        "completed",
        "rejected",
        "cancelled",
        "txns",
        "degraded",
        "epochs",
        "max_work",
        "budget",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<20} {:>5} {:>9} {:>8} {:>9} {:>6} {:>8} {:>6} {:>10} {:>9} {:>6}",
            m.name,
            m.operations,
            m.completed,
            m.rejected,
            m.cancelled,
            m.applied_txns,
            m.degraded_writes,
            m.epochs_published,
            m.max_request_work,
            m.work_budget,
            m.equal
        );
    }
}

fn check_service(baseline: &[ServiceMetric], current: &[ServiceMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: final snapshot no longer matches the oracle replay bit-for-bit",
                cur.name
            ));
        }
        if cur.max_request_work > cur.work_budget {
            failures.push(format!(
                "{}: peak request work {} escaped the budget {} — cancellation no longer bounds requests",
                cur.name, cur.max_request_work, cur.work_budget
            ));
        }
        if base.rejected > 0 && cur.rejected == 0 {
            failures.push(format!(
                "{}: admission control no longer rejects under overload (baseline rejected {})",
                cur.name, base.rejected
            ));
        }
        if base.cancelled > 0 && cur.cancelled == 0 {
            failures.push(format!(
                "{}: budget cancellation no longer fires (baseline cancelled {})",
                cur.name, base.cancelled
            ));
        }
        if base.degraded_writes > 0 {
            if cur.degraded_writes == 0 {
                failures.push(format!(
                    "{}: the poisoned writer no longer fails fast (baseline degraded {})",
                    cur.name, base.degraded_writes
                ));
            }
            if cur.applied_txns > base.applied_txns {
                failures.push(format!(
                    "{}: writer committed {} txns while degraded, baseline froze at {} — degraded mode must serve reads with zero writer progress",
                    cur.name, cur.applied_txns, base.applied_txns
                ));
            }
        }
        if base.epochs_published > 0 && cur.epochs_published == 0 {
            failures.push(format!(
                "{}: writer no longer publishes epochs (baseline published {})",
                cur.name, base.epochs_published
            ));
        }
        let floor = base.completion_ratio() * (1.0 - TOLERANCE) - ABS_SLACK;
        if cur.completion_ratio() < floor {
            failures.push(format!(
                "{}: completion ratio {:.4} below baseline {:.4} (-{:.0}% & slack = {:.4})",
                cur.name,
                cur.completion_ratio(),
                base.completion_ratio(),
                TOLERANCE * 100.0,
                floor
            ));
        }
    }
    failures
}

fn print_adaptive_summary(metrics: &[AdaptiveMetric]) {
    println!(
        "{:<18} {:>13} {:>12} {:>7} {:>7} {:>9} {:>8} {:>8} {:>9} {:>6}",
        "scenario",
        "adaptive_rows",
        "static_rows",
        "ratio",
        "replans",
        "est_error",
        "hits",
        "misses",
        "hit_rate",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<18} {:>13} {:>12} {:>7.4} {:>7} {:>9} {:>8} {:>8} {:>9.4} {:>6}",
            m.name,
            m.adaptive_rows,
            m.static_rows,
            m.work_ratio(),
            m.replans_triggered,
            m.est_error_max,
            m.cache_hits,
            m.cache_misses,
            m.hit_rate(),
            m.equal
        );
    }
}

fn check_adaptive(baseline: &[AdaptiveMetric], current: &[AdaptiveMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: adaptive evaluation no longer matches the static plan / oracle output",
                cur.name
            ));
        }
        if cur.name.starts_with("plan-cache/") {
            // Cache scenarios gate on the hit rate, not the row ratio
            // (cached plans are byte-identical to cold plans, so the row
            // columns are equal by construction).
            if cur.hit_rate() < 0.9 {
                failures.push(format!(
                    "{}: plan-cache hit rate {:.4} fell below 0.9 ({} hits / {} misses)",
                    cur.name,
                    cur.hit_rate(),
                    cur.cache_hits,
                    cur.cache_misses
                ));
            }
            if base.cache_invalidations > 0 && cur.cache_invalidations == 0 {
                failures.push(format!(
                    "{}: epoch fences no longer retire plans (baseline invalidated {})",
                    cur.name, base.cache_invalidations
                ));
            }
            continue;
        }
        if cur.adaptive_rows * 2 > cur.static_rows {
            failures.push(format!(
                "{}: adaptive {} vs static {} rows — re-planning no longer halves the probe work",
                cur.name, cur.adaptive_rows, cur.static_rows
            ));
        }
        if cur.replans_triggered == 0 {
            failures.push(format!(
                "{}: the mis-estimate trigger never fired on the correlated-skew workload",
                cur.name
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
    }
    failures
}

fn check_intern(baseline: &[InternMetric], current: &[InternMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: memoized path no longer matches the owned-polynomial path",
                cur.name
            ));
        }
        if cur.cached_work * 2 > cur.owned_work {
            failures.push(format!(
                "{}: cached work {} vs owned {} — the arena no longer halves the work",
                cur.name, cur.cached_work, cur.owned_work
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
    }
    failures
}

fn check(baseline: &[BenchMetric], current: &[BenchMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: delta maintenance no longer matches full re-evaluation",
                cur.name
            ));
        }
        if cur.delta_rows >= cur.full_rows {
            failures.push(format!(
                "{}: delta path explores {} rows, full re-eval {} — no win",
                cur.name, cur.delta_rows, cur.full_rows
            ));
        }
        if cur.delta_derivations >= cur.full_derivations {
            failures.push(format!(
                "{}: delta derivations {} >= full {}",
                cur.name, cur.delta_derivations, cur.full_derivations
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
    }
    failures
}

fn print_sched_summary(metrics: &[SchedMetric]) {
    println!(
        "{:<28} {:>10} {:>8} {:>10} {:>9} {:>7} {:>7} {:>9}",
        "scenario", "schedules", "pruned", "decisions", "complete", "mutant", "caught", "run_ms"
    );
    for m in metrics {
        println!(
            "{:<28} {:>10} {:>8} {:>10} {:>9} {:>7} {:>7} {:>9.3}",
            m.name,
            m.schedules,
            m.pruned,
            m.decisions,
            m.complete,
            m.expect_violation,
            m.caught,
            m.run_ms
        );
    }
}

fn check_sched(baseline: &[SchedMetric], current: &[SchedMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        // The seeded-bug contract is absolute: a mutant the sweep stops
        // catching means the harness went blind; a violation on a healthy
        // protocol means a real publication race.
        if cur.expect_violation != base.expect_violation {
            failures.push(format!(
                "{}: expect_violation flipped ({} -> {}) — scenario redefined, re-emit",
                cur.name, base.expect_violation, cur.expect_violation
            ));
        }
        if cur.caught != cur.expect_violation {
            failures.push(if cur.expect_violation {
                format!(
                    "{}: the seeded bug was NOT caught — the checker went blind",
                    cur.name
                )
            } else {
                format!(
                    "{}: violation found in a healthy protocol — a real schedule bug",
                    cur.name
                )
            });
        }
        if !cur.expect_violation && !cur.complete {
            failures.push(format!(
                "{}: sweep no longer exhaustive (cap hit) — the exhaustiveness claim is void",
                cur.name
            ));
        }
        // Exact diff: these counters are pure functions of the seam's
        // synchronization structure. Any drift means the structure
        // changed; a human must look and re-emit.
        if (cur.schedules, cur.pruned, cur.decisions)
            != (base.schedules, base.pruned, base.decisions)
        {
            failures.push(format!(
                "{}: schedule counters drifted (schedules {} -> {}, pruned {} -> {}, \
                 decisions {} -> {}) — synchronization structure changed, re-emit the baseline",
                cur.name,
                base.schedules,
                cur.schedules,
                base.pruned,
                cur.pruned,
                base.decisions,
                cur.decisions
            ));
        }
    }
    failures
}
