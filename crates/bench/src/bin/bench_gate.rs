//! The perf-regression gate: emits and checks `BENCH_*.json` baselines for
//! the incremental update engine, the interned provenance arena, and the
//! dictionary-encoded columnar storage layer.
//!
//! ```text
//! bench_gate [--bench updates|intern|storage] --emit PATH
//! bench_gate [--bench updates|intern|storage] --check BASELINE PATH
//! ```
//!
//! `--bench updates` (the default) replays the [`UpdateSettings::ci_gate`]
//! delta-maintenance scenarios (`BENCH_2.json`); `--bench intern` runs the
//! [`InternSettings::ci_gate`] memoization comparison (`BENCH_3.json`);
//! `--bench storage` runs the [`StorageSettings::ci_gate`] columnar-engine
//! comparison (`BENCH_4.json`).
//!
//! The diff compares only deterministic work counters (rows examined,
//! derivations, rows re-abstracted, retained constructions, probe/moved
//! bytes): with the fixed gate configurations they are identical across
//! machines, so the gate is immune to CI-runner noise. Wall-clock columns
//! are carried in the report for humans.
//!
//! Gate rules, per baseline entry:
//! * the entry must still exist in the current run;
//! * `equal` must hold (the fast path bit-for-bit matches the reference);
//! * the fast path must beat the reference outright — for `updates`,
//!   `delta_rows < full_rows` and `delta_derivations < full_derivations`;
//!   for `intern`, `cached_work * 2 <= owned_work` (the ≥ 2× reduction the
//!   arena promises); for `storage`, `id_probe_bytes * 2 <=
//!   value_probe_bytes` **and** `id_moved_bytes * 2 <= value_moved_bytes`
//!   (the ≥ 2× join-probe hash-work reduction the dictionary encoding
//!   promises);
//! * `work_ratio` may not regress by more than [`TOLERANCE`] (relative)
//!   plus a small absolute slack.
//!
//! The gate fails closed: an empty baseline, or a current scenario absent
//! from the baseline (i.e. ungated), is itself a failure — re-emit the
//! baseline so every scenario is covered.
//!
//! Exit status: 0 clean, 1 regression, 2 usage/IO error.

use provabs_bench::{
    parse_bench_json, parse_intern_json, parse_storage_json, run_intern_comparison,
    run_storage_comparison, run_update_comparison, write_bench_json, write_intern_json,
    write_storage_json, BenchMetric, InternMetric, InternSettings, StorageMetric, StorageSettings,
    UpdateSettings,
};
use std::path::Path;
use std::process::ExitCode;

/// Allowed relative growth of `work_ratio` over the baseline.
const TOLERANCE: f64 = 0.15;
/// Absolute slack on top (keeps near-zero ratios from gating on noise).
const ABS_SLACK: f64 = 0.02;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate [--bench updates|intern|storage] --emit PATH | --check BASELINE PATH"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench = if args.first().map(String::as_str) == Some("--bench") {
        if args.len() < 2 {
            return usage();
        }
        let which = args[1].clone();
        args.drain(0..2);
        which
    } else {
        "updates".to_owned()
    };
    match bench.as_str() {
        "updates" => run_updates_gate(&args),
        "intern" => run_intern_gate(&args),
        "storage" => run_storage_gate(&args),
        _ => usage(),
    }
}

fn run_updates_gate(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--emit") => {
            let [_, path] = args else {
                return usage();
            };
            let metrics = run_update_comparison(&UpdateSettings::ci_gate());
            if let Err(e) = write_bench_json(Path::new(path), "micro_updates", &metrics) {
                eprintln!("bench_gate: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            print_summary(&metrics);
            println!("bench_gate: wrote {path}");
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let [_, baseline_path, out_path] = args else {
                return usage();
            };
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let Some((_, baseline)) = parse_bench_json(&baseline_text) else {
                eprintln!("bench_gate: baseline {baseline_path} is not a bench report");
                return ExitCode::from(2);
            };
            let current = run_update_comparison(&UpdateSettings::ci_gate());
            if let Err(e) = write_bench_json(Path::new(out_path), "micro_updates", &current) {
                eprintln!("bench_gate: cannot write {out_path}: {e}");
                return ExitCode::from(2);
            }
            print_summary(&current);
            verdict(check(&baseline, &current), baseline.len())
        }
        _ => usage(),
    }
}

fn run_intern_gate(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--emit") => {
            let [_, path] = args else {
                return usage();
            };
            let metrics = run_intern_comparison(&InternSettings::ci_gate());
            if let Err(e) = write_intern_json(Path::new(path), "micro_intern", &metrics) {
                eprintln!("bench_gate: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            print_intern_summary(&metrics);
            println!("bench_gate: wrote {path}");
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let [_, baseline_path, out_path] = args else {
                return usage();
            };
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let Some((_, baseline)) = parse_intern_json(&baseline_text) else {
                eprintln!("bench_gate: baseline {baseline_path} is not an intern report");
                return ExitCode::from(2);
            };
            let current = run_intern_comparison(&InternSettings::ci_gate());
            if let Err(e) = write_intern_json(Path::new(out_path), "micro_intern", &current) {
                eprintln!("bench_gate: cannot write {out_path}: {e}");
                return ExitCode::from(2);
            }
            print_intern_summary(&current);
            verdict(check_intern(&baseline, &current), baseline.len())
        }
        _ => usage(),
    }
}

fn run_storage_gate(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--emit") => {
            let [_, path] = args else {
                return usage();
            };
            let metrics = run_storage_comparison(&StorageSettings::ci_gate());
            if let Err(e) = write_storage_json(Path::new(path), "micro_storage", &metrics) {
                eprintln!("bench_gate: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            print_storage_summary(&metrics);
            println!("bench_gate: wrote {path}");
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let [_, baseline_path, out_path] = args else {
                return usage();
            };
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let Some((_, baseline)) = parse_storage_json(&baseline_text) else {
                eprintln!("bench_gate: baseline {baseline_path} is not a storage report");
                return ExitCode::from(2);
            };
            let current = run_storage_comparison(&StorageSettings::ci_gate());
            if let Err(e) = write_storage_json(Path::new(out_path), "micro_storage", &current) {
                eprintln!("bench_gate: cannot write {out_path}: {e}");
                return ExitCode::from(2);
            }
            print_storage_summary(&current);
            verdict(check_storage(&baseline, &current), baseline.len())
        }
        _ => usage(),
    }
}

fn verdict(failures: Vec<String>, gated: usize) -> ExitCode {
    if failures.is_empty() {
        println!("bench_gate: OK ({gated} entries within tolerance)");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_gate: REGRESSION: {f}");
        }
        ExitCode::FAILURE
    }
}

fn print_summary(metrics: &[BenchMetric]) {
    println!(
        "{:<18} {:>12} {:>12} {:>7} {:>10} {:>10} {:>6}",
        "scenario", "delta_rows", "full_rows", "ratio", "delta_ms", "full_ms", "equal"
    );
    for m in metrics {
        println!(
            "{:<18} {:>12} {:>12} {:>7.4} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.delta_rows,
            m.full_rows,
            m.work_ratio(),
            m.delta_ms,
            m.full_ms,
            m.equal
        );
    }
}

fn print_intern_summary(metrics: &[InternMetric]) {
    println!(
        "{:<18} {:>12} {:>12} {:>7} {:>8} {:>10} {:>10} {:>6}",
        "scenario",
        "cached_work",
        "owned_work",
        "ratio",
        "hit_rate",
        "cached_ms",
        "owned_ms",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<18} {:>12} {:>12} {:>7.4} {:>8.4} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.cached_work,
            m.owned_work,
            m.work_ratio(),
            m.hit_rate(),
            m.cached_ms,
            m.owned_ms,
            m.equal
        );
    }
}

fn print_storage_summary(metrics: &[StorageMetric]) {
    println!(
        "{:<16} {:>8} {:>12} {:>14} {:>7} {:>7} {:>10} {:>10} {:>6}",
        "scenario",
        "probes",
        "id_pr_bytes",
        "value_pr_bytes",
        "ratio",
        "moved",
        "engine_ms",
        "oracle_ms",
        "equal"
    );
    for m in metrics {
        println!(
            "{:<16} {:>8} {:>12} {:>14} {:>7.4} {:>7.4} {:>10.2} {:>10.2} {:>6}",
            m.name,
            m.probes,
            m.id_probe_bytes,
            m.value_probe_bytes,
            m.work_ratio(),
            m.moved_ratio(),
            m.engine_ms,
            m.oracle_ms,
            m.equal
        );
    }
}

fn check_storage(baseline: &[StorageMetric], current: &[StorageMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: columnar engine no longer matches the owned-value oracle",
                cur.name
            ));
        }
        if cur.id_probe_bytes * 2 > cur.value_probe_bytes {
            failures.push(format!(
                "{}: probe bytes {} vs owned {} — dictionary ids no longer halve the hash work",
                cur.name, cur.id_probe_bytes, cur.value_probe_bytes
            ));
        }
        if cur.id_moved_bytes * 2 > cur.value_moved_bytes {
            failures.push(format!(
                "{}: moved bytes {} vs owned {} — id bindings no longer halve the bytes moved",
                cur.name, cur.id_moved_bytes, cur.value_moved_bytes
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
        let allowed_moved = base.moved_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.moved_ratio() > allowed_moved {
            failures.push(format!(
                "{}: moved_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.moved_ratio(),
                base.moved_ratio(),
                TOLERANCE * 100.0,
                allowed_moved
            ));
        }
    }
    failures
}

fn check_intern(baseline: &[InternMetric], current: &[InternMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: memoized path no longer matches the owned-polynomial path",
                cur.name
            ));
        }
        if cur.cached_work * 2 > cur.owned_work {
            failures.push(format!(
                "{}: cached work {} vs owned {} — the arena no longer halves the work",
                cur.name, cur.cached_work, cur.owned_work
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
    }
    failures
}

fn check(baseline: &[BenchMetric], current: &[BenchMetric]) -> Vec<String> {
    let mut failures = Vec::new();
    // Fail closed: a gate that compares nothing protects nothing.
    if baseline.is_empty() {
        failures.push("baseline holds no entries — re-emit it with --emit".to_owned());
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "{}: scenario has no baseline entry (ungated) — re-emit the baseline",
                cur.name
            ));
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            failures.push(format!("{}: entry missing from current run", base.name));
            continue;
        };
        if !cur.equal {
            failures.push(format!(
                "{}: delta maintenance no longer matches full re-evaluation",
                cur.name
            ));
        }
        if cur.delta_rows >= cur.full_rows {
            failures.push(format!(
                "{}: delta path explores {} rows, full re-eval {} — no win",
                cur.name, cur.delta_rows, cur.full_rows
            ));
        }
        if cur.delta_derivations >= cur.full_derivations {
            failures.push(format!(
                "{}: delta derivations {} >= full {}",
                cur.name, cur.delta_derivations, cur.full_derivations
            ));
        }
        let allowed = base.work_ratio() * (1.0 + TOLERANCE) + ABS_SLACK;
        if cur.work_ratio() > allowed {
            failures.push(format!(
                "{}: work_ratio {:.4} exceeds baseline {:.4} (+{:.0}% & slack = {:.4})",
                cur.name,
                cur.work_ratio(),
                base.work_ratio(),
                TOLERANCE * 100.0,
                allowed
            ));
        }
    }
    failures
}
