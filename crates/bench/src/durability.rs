//! The durability axis: reopening a persisted database versus rebuilding
//! it from scratch (the `micro_durability` bench and the `BENCH_6.json`
//! CI perf gate both drive this).
//!
//! Every scenario persists a TPC-H database through [`DurableDatabase`],
//! replays a deterministic churn stream ([`provabs_datagen::recovery_stream`])
//! against it as one WAL transaction per batch, then measures the *recovery*
//! path: close the handle and call [`DurableDatabase::open`] on the same VFS.
//! Two axes:
//!
//! * checkpoint state — `checkpointed` scenarios checkpoint after the last
//!   batch (reopen decodes the snapshot, replays nothing), `wal-tail`
//!   scenarios leave every batch in the WAL (reopen decodes the *seed*
//!   snapshot and replays the whole stream);
//! * workload shape — `insert-heavy` (90 % inserts) and `delete-heavy`
//!   (90 % deletes), the two churn presets.
//!
//! The compared counter is `reopen_bytes` — bytes physically read from the
//! VFS during `open`, counted by the [`MemVfs`] itself — against an
//! analytic `rebuild_bytes` model of re-ingesting the same logical state
//! tuple by tuple (the per-cell value-move/hash/column/posting cost the
//! dictionary-encoded storage layer pays on insert, the same model
//! `BENCH_4.json` gates on). Both are machine-independent: page I/O depends
//! only on database content and page size, the rebuild model only on the
//! decoded tuples. Wall-clock columns are carried for humans.
//!
//! The acceptance bar is a ≥ 2× read-work reduction
//! (`reopen_bytes * 2 <= rebuild_bytes`) on every scenario — warm reopen
//! must be measurably less work than cold rebuild — plus bit-for-bit
//! equality of the recovered database with the in-memory oracle,
//! fail-closed.

use crate::report::DurabilityMetric;
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{recovery_stream, ChurnConfig};
use provabs_relational::storage::{shared, DurableDatabase, DurableOptions, MemVfs, SharedVfs};
use provabs_relational::{hash_width, Database, ID_WIDTH, VALUE_MOVE_WIDTH};
use std::time::Instant;

/// Shape of one durability sweep.
#[derive(Debug, Clone)]
pub struct DurabilitySettings {
    /// TPC-H scale (lineitem rows).
    pub lineitem_rows: usize,
    /// Churn batches persisted per scenario (one WAL transaction each).
    pub batches: usize,
    /// Pager cache capacity, in pages.
    pub cache_pages: usize,
    /// Generator / stream seed.
    pub seed: u64,
}

impl Default for DurabilitySettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 400,
            batches: 4,
            cache_pages: 64,
            seed: 42,
        }
    }
}

impl DurabilitySettings {
    /// The settings the CI gate runs (and `BENCH_6.json` was emitted with).
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// One durability scenario: its churn preset and whether the stream is
/// checkpointed into the snapshot before reopen.
struct Scenario {
    name: &'static str,
    insert_heavy: bool,
    checkpointed: bool,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "reopen/checkpointed/insert-heavy",
        insert_heavy: true,
        checkpointed: true,
    },
    Scenario {
        name: "reopen/checkpointed/delete-heavy",
        insert_heavy: false,
        checkpointed: true,
    },
    Scenario {
        name: "reopen/wal-tail/insert-heavy",
        insert_heavy: true,
        checkpointed: false,
    },
    Scenario {
        name: "reopen/wal-tail/delete-heavy",
        insert_heavy: false,
        checkpointed: false,
    },
];

const BASE: &str = "bench";

/// Runs the full durability comparison: every scenario of the fixed
/// `SCENARIOS` list under `settings`, returning one metric per scenario.
///
/// Panics on any storage error: the bench runs on a fault-free [`MemVfs`],
/// so an error is a bug, not a measurement.
pub fn run_durability_comparison(settings: &DurabilitySettings) -> Vec<DurabilityMetric> {
    SCENARIOS
        .iter()
        .map(|sc| run_scenario(sc, settings))
        .collect()
}

fn run_scenario(sc: &Scenario, settings: &DurabilitySettings) -> DurabilityMetric {
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    db.build_indexes();
    let cfg = if sc.insert_heavy {
        ChurnConfig::insert_heavy(settings.seed)
    } else {
        ChurnConfig::delete_heavy(settings.seed)
    };
    let (deltas, oracle) = recovery_stream(&db, &cfg, settings.batches);

    let opts = DurableOptions {
        cache_pages: settings.cache_pages,
        checkpoint_every: 0,
    };
    let vfs: SharedVfs = shared(MemVfs::new());
    let mut ddb = DurableDatabase::create(vfs.clone(), BASE, db, opts)
        .expect("create on a fault-free MemVfs");
    for delta in &deltas {
        ddb.apply_delta(delta)
            .expect("apply on a fault-free MemVfs");
    }
    if sc.checkpointed {
        ddb.checkpoint().expect("checkpoint on a fault-free MemVfs");
    }
    let workload_fsyncs = vfs.lock().unwrap().stats().syncs;
    drop(ddb);

    // The recovery path: reopen from the durable files alone, counting
    // bytes physically read off the VFS.
    let before = vfs.lock().unwrap().stats();
    let start = Instant::now();
    let (re, info) =
        DurableDatabase::open(vfs.clone(), BASE, opts).expect("reopen on a fault-free MemVfs");
    let reopen_ms = start.elapsed().as_secs_f64() * 1e3;
    let reopen_bytes = vfs.lock().unwrap().stats().delta_since(&before).bytes_read;
    let pages_read = re.pager_stats().pages_read;

    // The alternative the snapshot saves us from: re-ingesting the same
    // logical state tuple by tuple and re-deriving the indexes.
    let start = Instant::now();
    let rebuilt = rebuild_in_memory(&oracle);
    let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;

    // Reopen must satisfy the bit-for-bit recovery invariant; the cold
    // rebuild only reproduces the *logical* state (retired annotations and
    // swap-removed posting order are not re-created by fresh inserts).
    let equal = re.db().same_state(&oracle) && logically_equal(&rebuilt, &oracle);
    DurabilityMetric {
        name: sc.name.to_owned(),
        pages_read,
        reopen_bytes,
        rebuild_bytes: rebuild_bytes(&oracle),
        wal_txns_replayed: info.replayed_txns,
        workload_fsyncs,
        reopen_ms,
        rebuild_ms,
        equal,
    }
}

/// Re-ingests `db`'s logical state into a fresh [`Database`]: same schema,
/// same tuples, same labels, indexes rebuilt — the cold path a process
/// without a snapshot would pay.
fn rebuild_in_memory(db: &Database) -> Database {
    let mut fresh = Database::new();
    for rel in db.schema().relation_ids() {
        let rs = db.schema().relation(rel);
        let columns: Vec<&str> = rs.columns.iter().map(String::as_str).collect();
        let fresh_rel = fresh.add_relation(&rs.name, &columns);
        let annots = db.tuple_annots(rel).to_vec();
        for (row, annot) in annots.into_iter().enumerate() {
            let label = db.annotations().name(annot).to_owned();
            fresh.insert(fresh_rel, &label, db.decode_row(rel, row));
        }
    }
    fresh.build_indexes();
    fresh
}

/// Whether two databases hold the same logical rows: per relation, the
/// same multiset of `(label, tuple)` pairs. Weaker than
/// [`Database::same_state`] by design — a cold rebuild cannot reproduce
/// physical layout, only content.
fn logically_equal(a: &Database, b: &Database) -> bool {
    if a.schema().len() != b.schema().len() {
        return false;
    }
    a.schema().relation_ids().all(|rel| {
        if a.schema().relation(rel) != b.schema().relation(rel) {
            return false;
        }
        let rows = |db: &Database| {
            let mut rows: Vec<(String, String)> = db
                .tuple_annots(rel)
                .iter()
                .enumerate()
                .map(|(row, &annot)| {
                    (
                        db.annotations().name(annot).to_owned(),
                        format!("{:?}", db.decode_row(rel, row)),
                    )
                })
                .collect();
            rows.sort();
            rows
        };
        rows(a) == rows(b)
    })
}

/// The analytic byte cost of [`rebuild_in_memory`]: per cell, one owned
/// [`Value`](provabs_relational::Value) move + one interning hash + one
/// dictionary-encoded column slot + one posting-list entry; per row, its
/// label's bytes through the annotation registry.
fn rebuild_bytes(db: &Database) -> u64 {
    let mut total = 0u64;
    let mut row_buf = Vec::new();
    for rel in db.schema().relation_ids() {
        let annots = db.tuple_annots(rel);
        for (row, &annot) in annots.iter().enumerate() {
            total += db.annotations().name(annot).len() as u64;
            db.decode_row_into(rel, row, &mut row_buf);
            for v in &row_buf {
                total += VALUE_MOVE_WIDTH + hash_width(v) + ID_WIDTH + ID_WIDTH;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let settings = DurabilitySettings {
            lineitem_rows: 120,
            batches: 2,
            ..Default::default()
        };
        let metrics = run_durability_comparison(&settings);
        assert_eq!(metrics.len(), SCENARIOS.len());
        for m in &metrics {
            assert!(
                m.equal,
                "{}: recovered state diverged from the oracle",
                m.name
            );
            assert!(
                m.reopen_bytes * 2 <= m.rebuild_bytes,
                "{}: reopen read {} bytes, rebuild modeled at {} — not a 2x win",
                m.name,
                m.reopen_bytes,
                m.rebuild_bytes
            );
            assert!(m.pages_read > 0, "{}: no pages read on reopen", m.name);
        }
        // Checkpointed scenarios replay nothing; wal-tail scenarios replay
        // the whole stream.
        for m in &metrics {
            if m.name.contains("/checkpointed/") {
                assert_eq!(m.wal_txns_replayed, 0, "{}", m.name);
            } else {
                assert_eq!(m.wal_txns_replayed, settings.batches as u64, "{}", m.name);
            }
        }
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let a = run_durability_comparison(&DurabilitySettings {
            lineitem_rows: 120,
            batches: 2,
            ..DurabilitySettings::ci_gate()
        });
        let b = run_durability_comparison(&DurabilitySettings {
            lineitem_rows: 120,
            batches: 2,
            ..DurabilitySettings::ci_gate()
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.pages_read, y.pages_read, "{}", x.name);
            assert_eq!(x.reopen_bytes, y.reopen_bytes, "{}", x.name);
            assert_eq!(x.rebuild_bytes, y.rebuild_bytes, "{}", x.name);
            assert_eq!(x.wal_txns_replayed, y.wal_txns_replayed, "{}", x.name);
            assert_eq!(x.workload_fsyncs, y.workload_fsyncs, "{}", x.name);
        }
    }
}
