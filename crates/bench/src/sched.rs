//! The schedule-enumeration axis: deterministic model-checking sweeps over
//! the engine's concurrency seams (the `micro_sched` bench and the
//! `BENCH_10.json` CI gate both drive this).
//!
//! Each scenario runs the `provabs-sched` explorer over a fixed ≤ 3-thread
//! concurrency scenario and reports the counters of the sweep itself:
//! schedules explored, sleep-set prunes, scheduling decisions, whether the
//! sweep was exhaustive, and — for the `mutant/*` scenarios, which seed a
//! publication-ordering bug on purpose — whether the sweep caught it.
//!
//! Two scenario families:
//!
//! * `session/*`, `plancache/*`, `admission/*` — the healthy protocols.
//!   The sweep must come back clean **and complete** (exhaustive up to the
//!   sleep-set reduction, no preemption bound), with a schedule count that
//!   is a pure function of the scenario. The gate diffs the counts
//!   *exactly*: a changed count means the synchronization structure of the
//!   seam changed, which is precisely what should force a human to re-emit
//!   the baseline.
//! * `mutant/*` — seeded bugs (fence dropped, publish-before-stage,
//!   unfenced privacy invalidation). The gate demands `caught == true`,
//!   fail-closed: a harness that stops seeing planted races protects
//!   nothing.
//!
//! Determinism notes: shard routing is unkeyed (see
//! `provabs_core::sharded`), every scenario touches a single annotation /
//! relation so no `HashSet` iteration order leaks into lock sequences, and
//! the explorer configs are pinned here — the `PROVABS_SCHED_BUDGET` env
//! knob deepens the *test-suite* sweeps, never the gate's.

use crate::report::SchedMetric;
use provabs_core::privacy::PrivacyCache;
use provabs_relational::storage::{FaultyVfs, SharedVfs};
use provabs_relational::{parse_cq, Database, PlanMode, SessionRegistry};
use provabs_sched as sched;
use provabs_semiring::AnnotId;
use provabsd::{Provabsd, ServiceConfig, ServiceError};
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Arc, Mutex};
use sched::Config;
use std::collections::HashSet;
use std::time::Instant;

/// Shape of one schedule-enumeration sweep suite.
#[derive(Debug, Clone)]
pub struct SchedSettings {
    /// Hard cap on schedules per scenario (the gate scenarios finish far
    /// below it; hitting the cap marks the sweep incomplete, which the
    /// gate rejects).
    pub max_schedules: u64,
    /// Hard cap on scheduling decisions within one schedule.
    pub max_steps: u64,
}

impl Default for SchedSettings {
    fn default() -> Self {
        Self {
            max_schedules: 200_000,
            max_steps: 20_000,
        }
    }
}

impl SchedSettings {
    /// The fixed configuration the CI gate replays (`BENCH_10.json`).
    /// Deliberately *not* influenced by `PROVABS_SCHED_BUDGET`: gate
    /// counters must be a pure function of the code under test.
    pub fn ci_gate() -> Self {
        Self::default()
    }

    fn config(&self) -> Config {
        Config {
            preemption_bound: None,
            max_schedules: self.max_schedules,
            max_steps: self.max_steps,
        }
    }
}

fn seed_db() -> Database {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    db.add_relation("S", &["a"]);
    db.insert_str(r, "t1", &["1", "x"]);
    db.insert_str(r, "t2", &["2", "x"]);
    db.build_indexes();
    db
}

/// Two readers race a writer publishing two epochs; every pinned snapshot
/// must hold exactly its epoch's tuples.
fn session_publish_body() {
    let db = seed_db();
    let base = db.len() as u64;
    let (registry, mut writer) = SessionRegistry::shared(db.clone());
    let mut wdb = db;
    let w = sched::thread::spawn(move || {
        let r = wdb.schema().relation_id("R").unwrap();
        for i in 0..2u64 {
            wdb.insert_str(r, &format!("w{i}"), &[&format!("{}", 10 + i), "x"]);
            writer.publish(&wdb);
        }
    });
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let reg = sched::sync::Arc::clone(&registry);
            sched::thread::spawn(move || {
                let s = reg.pin();
                assert_eq!(s.len() as u64, base + s.epoch(), "torn snapshot");
            })
        })
        .collect();
    for h in readers {
        h.join().unwrap();
    }
    w.join().unwrap();
}

/// The plan-cache fence protocol; `fence_first == false` is the seeded
/// mutant (publish before retire).
fn plan_cache_body(fence_first: bool) {
    let db = seed_db();
    let s_rel = db.schema().relation_id("S").unwrap();
    let (registry, mut writer) = SessionRegistry::shared(db.clone());
    let q = parse_cq("q(a) :- S(a)", db.schema()).unwrap();
    registry
        .plan_cache()
        .lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
    let reg_w = sched::sync::Arc::clone(&registry);
    let wdb = db.clone();
    let w = sched::thread::spawn(move || {
        if fence_first {
            reg_w.plan_cache().invalidate_at(&[s_rel], 1);
            writer.publish(&wdb);
        } else {
            writer.publish(&wdb);
            reg_w.plan_cache().invalidate_at(&[s_rel], 1);
        }
    });
    let session = registry.pin();
    let (_, hit) =
        registry
            .plan_cache()
            .lookup_or_plan(&session, &q, PlanMode::CostBased, session.epoch());
    if session.epoch() >= 1 {
        assert!(!hit, "stale plan served at fenced epoch 1");
    }
    w.join().unwrap();
}

/// The minimal two-cell registry model; `publish_before_stage == true` is
/// the seeded mutant.
fn staged_publication_body(publish_before_stage: bool) {
    let epoch = Arc::new(AtomicU64::labeled("torn.epoch", 0));
    let len = Arc::new(Mutex::labeled("torn.len", 0u64));
    let (e2, l2) = (Arc::clone(&epoch), Arc::clone(&len));
    let w = sched::thread::spawn(move || {
        if publish_before_stage {
            e2.store(1, Ordering::SeqCst);
            *l2.lock().expect("len") = 1;
        } else {
            *l2.lock().expect("len") = 1;
            e2.store(1, Ordering::SeqCst);
        }
    });
    let e = epoch.load(Ordering::SeqCst);
    let l = *len.lock().expect("len");
    assert!(l >= e, "half-published epoch observed");
    w.join().unwrap();
}

/// The privacy-cache fence protocol with the fence dropped *after* the
/// epoch store — a reader at the new epoch can hit the stale verdict.
fn privacy_unfenced_body() {
    let annot = AnnotId(7);
    let cache = Arc::new(PrivacyCache::new());
    cache.connectivity_record(&[annot], 0, false);
    let published = Arc::new(AtomicU64::labeled("privacy.epoch", 0));
    let (c2, p2) = (Arc::clone(&cache), Arc::clone(&published));
    let writer = sched::thread::spawn(move || {
        let touched = HashSet::from([annot]);
        p2.store(1, Ordering::SeqCst);
        c2.invalidate_at(&touched, 1);
    });
    let epoch = published.load(Ordering::SeqCst);
    let truth = epoch >= 1;
    if let Some(v) = cache.connectivity_probe(&[annot], epoch) {
        assert_eq!(v, truth, "stale privacy verdict at epoch {epoch}");
    }
    writer.join().unwrap();
}

/// Two clients race for one admission slot; decisions must linearize with
/// the queue state and the gauges must drain.
fn admission_body() {
    let vfs: SharedVfs = std::sync::Arc::new(std::sync::Mutex::new(FaultyVfs::new()));
    let svc = Provabsd::create(
        vfs,
        "svc",
        seed_db(),
        ServiceConfig {
            queue_capacity: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let svc = svc.clone();
            sched::thread::spawn(move || match svc.acquire(10) {
                Ok(permit) => {
                    drop(permit);
                    true
                }
                Err(ServiceError::Overloaded { queue_depth, .. }) => {
                    assert_eq!(queue_depth, 1, "rejection with a free slot");
                    false
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            })
        })
        .collect();
    let admitted = clients
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&ok| ok)
        .count() as u64;
    let s = svc.stats();
    assert!(admitted >= 1);
    assert_eq!(s.admitted + s.rejected_queue, 2);
    let h = svc.health();
    assert_eq!((h.queue_depth, h.inflight_work), (0, 0));
}

fn sweep(name: &str, cfg: Config, expect_violation: bool, body: fn()) -> SchedMetric {
    let start = Instant::now();
    let outcome = sched::explore_with(cfg, body);
    let run_ms = start.elapsed().as_secs_f64() * 1e3;
    SchedMetric {
        name: name.to_owned(),
        schedules: outcome.schedules,
        pruned: outcome.pruned,
        decisions: outcome.decisions,
        complete: outcome.complete,
        expect_violation,
        caught: outcome.violation.is_some(),
        run_ms,
    }
}

/// Runs every gate scenario and returns one [`SchedMetric`] per sweep.
pub fn run_sched_sweeps(settings: &SchedSettings) -> Vec<SchedMetric> {
    let cfg = || settings.config();
    vec![
        sweep("session/publish-2r1w", cfg(), false, session_publish_body),
        sweep("plancache/fence-ordered", cfg(), false, || {
            plan_cache_body(true)
        }),
        sweep("admission/2-clients", cfg(), false, admission_body),
        sweep("mutant/plan-fence-dropped", cfg(), true, || {
            plan_cache_body(false)
        }),
        sweep("mutant/publish-before-stage", cfg(), true, || {
            staged_publication_body(true)
        }),
        sweep(
            "mutant/privacy-unfenced",
            cfg(),
            true,
            privacy_unfenced_body,
        ),
    ]
}
