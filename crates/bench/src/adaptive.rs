//! The adaptive-execution axis: deterministic mid-join re-planning with
//! sideways statistics versus the static cost-based plan, plus the
//! epoch-keyed plan cache under a closed-loop service workload (the
//! `micro_adaptive` bench and the `BENCH_9.json` CI perf gate both drive
//! this).
//!
//! Two scenario families:
//!
//! * `corr-skew/s<seed>` — a [`provabs_datagen::correlated_skew`]
//!   database: every planted statistic (relation length, per-column
//!   distinct counts) points at the join order that explodes, because the
//!   cheap-looking atoms owe their selectivity to cold keys the driving
//!   scan never produces. The *same* query is evaluated twice on the
//!   scalar engine — once statically planned, once with the adaptive
//!   trigger armed ([`Evaluator::adaptive`]) — and both outputs must be
//!   bit-for-bit equal to each other *and* to the naive decoded-scan
//!   oracle ([`provabs_relational::oracle`]). The compared counter is
//!   `rows_examined`, the same machine-independent probe-work proxy every
//!   other gate diffs; the acceptance bar is a ≥ 2× reduction
//!   (`adaptive_rows * 2 <= static_rows`), fail-closed.
//! * `plan-cache/zipf` — a zipf-skewed closed loop against the `provabsd`
//!   service with interleaved churn: sessions pin snapshots, templates
//!   repeat, and the writer fences the registry-wide
//!   [`PlanCache`](provabs_relational::PlanCache) before publishing each
//!   epoch. The gate demands a ≥ 0.9 hit rate and the final snapshot must
//!   replay an offline oracle bit-for-bit.
//!
//! Every compared counter is a pure function of the seed and the fixed
//! settings — re-plan points are row-count triggered, never wall-clock
//! triggered — so the gate is immune to CI-runner noise.

use crate::report::AdaptiveMetric;
use provabs_datagen::tpch::{self, tpch_queries, TpchConfig};
use provabs_datagen::{
    correlated_skew, service_schedule, ChurnConfig, ChurnGenerator, CorrelatedSkewConfig,
    ServiceOp, ServiceWorkloadConfig,
};
use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::storage::{FaultyVfs, SharedVfs};
use provabs_relational::Evaluator;
use provabsd::{Provabsd, ServiceConfig, Session};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shape of one adaptive-execution sweep.
#[derive(Debug, Clone)]
pub struct AdaptiveSettings {
    /// Seeds of the correlated-skew scenarios (one scenario per seed; the
    /// seed moves which anchor keys carry `Narrow` hits, not the sizes).
    pub skew_seeds: Vec<u64>,
    /// Correlated-skew shape. Kept below the datagen defaults so the
    /// full-product oracle replay stays cheap.
    pub skew: CorrelatedSkewConfig,
    /// Mis-estimate trigger factor passed to [`Evaluator::adaptive`].
    pub k: f64,
    /// Closed-loop operations of the `plan-cache/zipf` scenario.
    pub operations: usize,
    /// Closed-loop reader clients.
    pub clients: usize,
    /// Zipf exponent of the template popularity skew.
    pub zipf_s: f64,
    /// Every `update_every`-th operation is a writer churn batch (each one
    /// fences the plan cache and publishes a new epoch).
    pub update_every: usize,
    /// TPC-H scale (lineitem rows) of the service scenario.
    pub lineitem_rows: usize,
    /// Workload / churn seed of the service scenario.
    pub seed: u64,
}

impl Default for AdaptiveSettings {
    fn default() -> Self {
        Self {
            skew_seeds: vec![9, 17, 33],
            skew: CorrelatedSkewConfig {
                anchor_keys: 32,
                bloat_per_key: 16,
                bloat_cold: 512,
                wide_per_key: 32,
                wide_cold: 1024,
                narrow_keys: 256,
                narrow_per_key: 6,
                narrow_hits: 2,
                seed: 0, // overridden per scenario
            },
            k: 2.0,
            operations: 400,
            clients: 4,
            zipf_s: 1.1,
            update_every: 160,
            lineitem_rows: 200,
            seed: 42,
        }
    }
}

impl AdaptiveSettings {
    /// The fixed configuration of the CI perf gate: small enough for a
    /// 1-CPU runner, deterministic, and the shape `BENCH_9.json` is built
    /// from. Changing this invalidates the checked-in baseline — re-emit
    /// it.
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// Runs every scenario of `settings`, returning one metric per scenario:
/// one `corr-skew/s<seed>` entry per seed, then `plan-cache/zipf`.
pub fn run_adaptive_comparison(settings: &AdaptiveSettings) -> Vec<AdaptiveMetric> {
    let mut out = Vec::new();
    for &seed in &settings.skew_seeds {
        out.push(skew_metric(settings, seed));
    }
    out.push(plan_cache_metric(settings));
    out
}

/// One `corr-skew/` scenario: static versus adaptive evaluation of the
/// correlated-skew query, with the oracle as the independent correctness
/// witness.
fn skew_metric(settings: &AdaptiveSettings, seed: u64) -> AdaptiveMetric {
    let (db, w) = correlated_skew(&CorrelatedSkewConfig {
        seed,
        ..settings.skew.clone()
    });
    let t0 = Instant::now();
    let (static_out, static_work) = Evaluator::new(&db).eval_cq(&w.query);
    let static_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let (adaptive_out, adaptive_work) = Evaluator::new(&db).adaptive(settings.k).eval_cq(&w.query);
    let adaptive_ms = t1.elapsed().as_secs_f64() * 1e3;
    let oracle = oracle_eval_cq(&db, &w.query);
    let equal = adaptive_out == static_out && adaptive_out == oracle;
    AdaptiveMetric {
        name: w.name,
        adaptive_rows: adaptive_work.rows_examined,
        static_rows: static_work.rows_examined,
        replans_triggered: adaptive_work.replan.replans_triggered,
        est_error_max: adaptive_work.replan.est_error_max,
        cache_hits: 0,
        cache_misses: 0,
        cache_invalidations: 0,
        adaptive_ms,
        static_ms,
        equal,
    }
}

/// The `plan-cache/zipf` scenario: the same closed loop `bench::service`
/// drives, but the compared counters are the registry-wide plan cache's —
/// templates repeat under zipf skew, churn fences the cache at every
/// publication, and re-pinned sessions re-plan at most once per template
/// per epoch.
fn plan_cache_metric(settings: &AdaptiveSettings) -> AdaptiveMetric {
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    db.build_indexes();
    let templates = tpch_queries(db.schema());
    let mut oracle = db.clone();
    let vfs: SharedVfs = Arc::new(Mutex::new(FaultyVfs::new()));
    let svc = Provabsd::create(vfs, "bench-adaptive", db, ServiceConfig::default())
        .expect("create on a fault-free VFS");

    let schedule = service_schedule(&ServiceWorkloadConfig {
        clients: settings.clients,
        operations: settings.operations,
        templates: templates.len(),
        zipf_s: settings.zipf_s,
        update_every: settings.update_every,
        seed: settings.seed,
    });
    let mut churn = ChurnGenerator::new(&ChurnConfig {
        batch_size: 8,
        insert_ratio: 0.7,
        seed: settings.seed,
    });

    let mut sessions: Vec<Option<Session>> = vec![None; settings.clients.max(1)];
    let mut rows_examined = 0u64;
    let start = Instant::now();
    for op in &schedule {
        match *op {
            ServiceOp::Query { client, template } => {
                let slot = &mut sessions[client];
                let stale = slot
                    .as_ref()
                    .is_none_or(|s| s.epoch() < svc.registry().epoch());
                if stale {
                    *slot = Some(svc.session());
                }
                let out = slot
                    .as_ref()
                    .expect("just pinned")
                    .query(&templates[template].query)
                    .expect("healthy closed loop completes every query");
                rows_examined += out.work.rows_examined;
            }
            ServiceOp::Update => {
                let delta = churn.next_batch(svc.session().db());
                svc.apply(&delta).expect("healthy closed loop applies");
                oracle.apply_delta(&delta);
            }
        }
    }
    let run_ms = start.elapsed().as_secs_f64() * 1e3;

    // The oracle replay: the final pinned snapshot must be bit-for-bit the
    // seed plus the applied churn prefix — state, per-template answers,
    // and engine work counters alike (cached plans are byte-identical to
    // cold plans, so the cache cannot shift a single counter).
    let snapshot = svc.session();
    let mut equal = snapshot.db().database().same_state(&oracle);
    for w in &templates {
        let want = Evaluator::new(&oracle).eval_cq(&w.query);
        let got = Evaluator::new(snapshot.db()).eval_cq(&w.query);
        equal &= got == want;
    }

    let stats = svc.stats();
    AdaptiveMetric {
        name: "plan-cache/zipf".to_owned(),
        adaptive_rows: rows_examined,
        static_rows: rows_examined,
        replans_triggered: 0,
        est_error_max: 0,
        cache_hits: stats.plan_cache_hits,
        cache_misses: stats.plan_cache_misses,
        cache_invalidations: stats.plan_cache_invalidations,
        adaptive_ms: run_ms,
        static_ms: run_ms,
        equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> AdaptiveSettings {
        AdaptiveSettings {
            skew_seeds: vec![9],
            operations: 120,
            update_every: 48,
            lineitem_rows: 80,
            ..Default::default()
        }
    }

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let metrics = run_adaptive_comparison(&quick_settings());
        assert_eq!(metrics.len(), 2);
        for m in &metrics {
            assert!(m.equal, "{}: adaptive evaluation diverged", m.name);
        }
        let skew = &metrics[0];
        assert!(skew.name.starts_with("corr-skew/"));
        assert!(skew.replans_triggered >= 1, "the trigger never fired");
        assert!(skew.est_error_max >= 2, "the static plan was not fooled");
        assert!(
            skew.adaptive_rows * 2 <= skew.static_rows,
            "{}: adaptive {} vs static {} rows — below the 2x bar",
            skew.name,
            skew.adaptive_rows,
            skew.static_rows
        );
        let cache = &metrics[1];
        assert_eq!(cache.name, "plan-cache/zipf");
        assert!(cache.cache_hits > cache.cache_misses);
        assert!(
            cache.cache_invalidations > 0,
            "churn publications must fence the cache"
        );
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let a = run_adaptive_comparison(&quick_settings());
        let b = run_adaptive_comparison(&quick_settings());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.adaptive_rows, y.adaptive_rows, "{}", x.name);
            assert_eq!(x.static_rows, y.static_rows, "{}", x.name);
            assert_eq!(x.replans_triggered, y.replans_triggered, "{}", x.name);
            assert_eq!(x.est_error_max, y.est_error_max, "{}", x.name);
            assert_eq!(x.cache_hits, y.cache_hits, "{}", x.name);
            assert_eq!(x.cache_misses, y.cache_misses, "{}", x.name);
            assert_eq!(x.cache_invalidations, y.cache_invalidations, "{}", x.name);
            assert_eq!(x.equal, y.equal, "{}", x.name);
        }
    }

    #[test]
    fn gate_hit_rate_clears_the_bar() {
        // The exact configuration BENCH_9.json gates on: zipf repetition
        // plus only-at-publication fencing must keep 9 of 10 lookups warm.
        let metrics = run_adaptive_comparison(&AdaptiveSettings::ci_gate());
        let cache = metrics.last().expect("plan-cache scenario present");
        assert!(
            cache.hit_rate() >= 0.9,
            "hit rate {:.4} below the 0.9 gate bar ({} hits / {} misses)",
            cache.hit_rate(),
            cache.cache_hits,
            cache.cache_misses
        );
    }
}
