//! The storage-comparison axis: the dictionary-encoded columnar engine
//! versus the row-oriented owned-`Value` path it replaced (the
//! `micro_storage` bench and the `BENCH_4.json` CI perf gate both drive
//! this).
//!
//! Two scenario families, each contributing deterministic work counters the
//! gate can diff:
//!
//! * `eval/<query>` — one full evaluation of a TPC-H workload query. The
//!   engine counts, per join probe, both the 4 id bytes it actually fed
//!   the hasher and the bytes the owned path would have hashed for the
//!   *identical* probe (enum discriminant + payload of the probed value),
//!   and likewise for every binding/output move
//!   ([`EvalWork`]) — same plan, same
//!   candidate sets, so the owned column is an exact replay, not an
//!   estimate. Correctness is witnessed against the structurally
//!   independent naive owned-value oracle
//!   ([`provabs_relational::oracle`]), which joins by decoded scans with no
//!   indexes and no interning.
//! * `churn/<query>` — a deterministic update stream maintained through the
//!   delta path; counters accumulate over every retraction/addition pass
//!   and the maintained cache must equal the oracle's re-evaluation of the
//!   final database.
//!
//! The counters are machine-independent (same database, same query, same
//! plan ⇒ same bytes), so the gate is immune to runner noise; wall-clock
//! columns are carried for humans.

use crate::report::StorageMetric;
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{ChurnConfig, ChurnGenerator};
use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::{Cq, Database, EvalWork, Evaluator, Execution, PlanMode, Updater};
use std::time::Instant;

/// Shape of one storage-comparison sweep.
#[derive(Debug, Clone)]
pub struct StorageSettings {
    /// TPC-H scale (lineitem rows). Keep oracle-feasible: the reference
    /// evaluator joins by naive scans.
    pub lineitem_rows: usize,
    /// Workload queries swept by the `eval/` scenarios.
    pub eval_queries: Vec<String>,
    /// Workload queries swept by the `churn/` scenarios.
    pub churn_queries: Vec<String>,
    /// Batches replayed per churn scenario.
    pub batches: usize,
    /// Changes per batch.
    pub batch_size: usize,
    /// Insert fraction of the churn stream.
    pub insert_ratio: f64,
    /// Generator / stream seed.
    pub seed: u64,
    /// Atom-order mode of every engine evaluation. Defaults to
    /// [`PlanMode::Greedy`] — the pre-planner order the checked-in
    /// `BENCH_4.json` probe/moved-bytes counters were measured under.
    pub plan_mode: PlanMode,
}

impl Default for StorageSettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 600,
            eval_queries: vec!["TPCH-Q3".into(), "TPCH-Q4".into(), "TPCH-Q10".into()],
            churn_queries: vec!["TPCH-Q3".into(), "TPCH-Q4".into()],
            batches: 3,
            batch_size: 8,
            insert_ratio: 0.5,
            seed: 42,
            plan_mode: PlanMode::Greedy,
        }
    }
}

impl StorageSettings {
    /// The fixed configuration of the CI perf gate: small enough for a
    /// 1-CPU runner, deterministic, and the shape `BENCH_4.json` is built
    /// from. Changing this invalidates the checked-in baseline — re-emit
    /// it.
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// Runs every scenario of `settings`, returning one metric per scenario.
pub fn run_storage_comparison(settings: &StorageSettings) -> Vec<StorageMetric> {
    let mut out = Vec::new();
    let (db_proto, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    let workloads = tpch::tpch_queries(db_proto.schema());
    let find = |name: &String| workloads.iter().find(|w| &w.name == name);
    for qname in &settings.eval_queries {
        if let Some(w) = find(qname) {
            out.push(eval_metric(&db_proto, qname, &w.query, settings.plan_mode));
        }
    }
    for qname in &settings.churn_queries {
        if let Some(w) = find(qname) {
            out.push(churn_metric(&db_proto, qname, &w.query, settings));
        }
    }
    out
}

fn metric_from(
    name: String,
    work: EvalWork,
    engine_ms: f64,
    oracle_ms: f64,
    equal: bool,
) -> StorageMetric {
    StorageMetric {
        name,
        probes: work.probes,
        id_probe_bytes: work.probe_bytes_id,
        value_probe_bytes: work.probe_bytes_value,
        id_moved_bytes: work.moved_bytes_id,
        value_moved_bytes: work.moved_bytes_value,
        engine_ms,
        oracle_ms,
        equal,
    }
}

/// One `eval/` scenario: a full evaluation, counters from the engine,
/// equality against the owned-value oracle.
fn eval_metric(db_proto: &Database, qname: &str, query: &Cq, mode: PlanMode) -> StorageMetric {
    let mut db = db_proto.clone();
    db.build_indexes();
    let t0 = Instant::now();
    // BENCH_4 replays counters recorded on the scalar engine.
    let (out, work) = Evaluator::new(&db)
        .plan(mode)
        .execution(Execution::Scalar)
        .eval_cq(query);
    let engine_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let oracle = oracle_eval_cq(&db, query);
    let oracle_ms = t1.elapsed().as_secs_f64() * 1e3;
    metric_from(
        format!("eval/{qname}"),
        work,
        engine_ms,
        oracle_ms,
        out == oracle,
    )
}

/// One `churn/` scenario: the delta path maintains the query's K-relation
/// over a deterministic update stream; counters accumulate across every
/// restricted pass and the final cache must equal the oracle.
fn churn_metric(
    db_proto: &Database,
    qname: &str,
    query: &Cq,
    settings: &StorageSettings,
) -> StorageMetric {
    let mut db = db_proto.clone();
    db.build_indexes();
    let mut cached = Evaluator::new(&db)
        .plan(settings.plan_mode)
        .execution(Execution::Scalar)
        .eval_cq(query)
        .0;
    let mut gen = ChurnGenerator::new(&ChurnConfig {
        batch_size: settings.batch_size,
        insert_ratio: settings.insert_ratio,
        seed: settings.seed ^ 0x5707_a6e5,
    });
    let mut work = EvalWork::default();
    let mut engine_ms = 0.0f64;
    let mut merged = true;
    for _ in 0..settings.batches {
        let delta = gen.next_batch(&db);
        let t0 = Instant::now();
        let outcome = Updater::new()
            .plan(settings.plan_mode)
            .execution(Execution::Scalar)
            .apply(&mut db, &delta, std::slice::from_ref(query));
        merged &= outcome.deltas[0].merge_into(&mut cached);
        engine_ms += t0.elapsed().as_secs_f64() * 1e3;
        work.absorb(&outcome.work);
    }
    let t1 = Instant::now();
    let oracle = oracle_eval_cq(&db, query);
    let oracle_ms = t1.elapsed().as_secs_f64() * 1e3;
    metric_from(
        format!("churn/{qname}"),
        work,
        engine_ms,
        oracle_ms,
        merged && cached == oracle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> StorageSettings {
        StorageSettings {
            lineitem_rows: 300,
            eval_queries: vec!["TPCH-Q4".into()],
            churn_queries: vec!["TPCH-Q4".into()],
            batches: 2,
            ..Default::default()
        }
    }

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let metrics = run_storage_comparison(&quick_settings());
        assert_eq!(metrics.len(), 2);
        for m in &metrics {
            assert!(m.equal, "{}: engine diverged from the owned oracle", m.name);
            assert!(
                m.id_probe_bytes * 2 <= m.value_probe_bytes,
                "{}: probe bytes {} vs owned {} — below the 2x bar",
                m.name,
                m.id_probe_bytes,
                m.value_probe_bytes
            );
            assert!(
                m.id_moved_bytes * 2 <= m.value_moved_bytes,
                "{}: moved bytes {} vs owned {} — below the 2x bar",
                m.name,
                m.id_moved_bytes,
                m.value_moved_bytes
            );
        }
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let settings = StorageSettings {
            eval_queries: vec!["TPCH-Q4".into()],
            churn_queries: vec!["TPCH-Q4".into()],
            ..StorageSettings::ci_gate()
        };
        let a = run_storage_comparison(&settings);
        let b = run_storage_comparison(&settings);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.probes, y.probes, "{}", x.name);
            assert_eq!(x.id_probe_bytes, y.id_probe_bytes, "{}", x.name);
            assert_eq!(x.value_probe_bytes, y.value_probe_bytes, "{}", x.name);
            assert_eq!(x.id_moved_bytes, y.id_moved_bytes, "{}", x.name);
            assert_eq!(x.value_moved_bytes, y.value_moved_bytes, "{}", x.name);
        }
    }
}
