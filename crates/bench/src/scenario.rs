//! Scenario construction: dataset + tree + K-example per workload query.

use provabs_core::loi::LoiDistribution;
use provabs_core::privacy::PrivacyConfig;
use provabs_core::search::{find_optimal_abstraction, SearchConfig};
use provabs_core::Bound;
use provabs_datagen::imdb::{self, ImdbConfig};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{kexample_for_mode, Workload};
use provabs_relational::{Cq, Database, KExample, PlanMode};
use provabs_tree::AbstractionTree;
use std::time::Instant;

use crate::report::Measurement;

/// Global knobs of one experiment family (the Table 5 settings, scaled to
/// laptop size — the scaling is recorded in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ScenarioSettings {
    /// Privacy threshold `k` (paper default 5).
    pub threshold: usize,
    /// Abstraction-tree leaves (paper default 10 000; harness default 800).
    pub tree_leaves: usize,
    /// Abstraction-tree height (paper default 5).
    pub tree_height: u32,
    /// K-example rows (paper default 2).
    pub rows: usize,
    /// TPC-H lineitem rows.
    pub tpch_lineitems: usize,
    /// IMDB size.
    pub imdb_people: usize,
    /// IMDB movies.
    pub imdb_movies: usize,
    /// Generator / tree seed.
    pub seed: u64,
    /// Shuffle tree leaves before division (random subcategories) instead
    /// of clustering similar tuples.
    pub shuffle_tree: bool,
    /// Atom-order mode of the K-example-extracting evaluation (the
    /// extraction is output-capped, so the mode decides *which* outputs
    /// become the example). Cost-based by default; the `BENCH_3.json`
    /// intern harness pins [`PlanMode::Greedy`] to reproduce its baseline
    /// scenarios.
    pub plan_mode: PlanMode,
}

impl Default for ScenarioSettings {
    fn default() -> Self {
        Self {
            threshold: 5,
            tree_leaves: 800,
            tree_height: 5,
            rows: 2,
            tpch_lineitems: 2_000,
            imdb_people: 150,
            imdb_movies: 150,
            seed: 42,
            shuffle_tree: false,
            plan_mode: PlanMode::default(),
        }
    }
}

/// Resource caps keeping the NP-hard search laptop-bounded. Hitting a cap is
/// reported through [`Measurement::truncated`].
#[derive(Debug, Clone)]
pub struct HarnessCaps {
    /// Max abstractions enumerated per search.
    pub max_candidates: usize,
    /// Max concretizations per privacy evaluation.
    pub max_concretizations: usize,
    /// Max alignments per consistency call.
    pub max_alignments: usize,
    /// Wall-clock budget per search in milliseconds.
    pub time_budget_ms: Option<u64>,
    /// Worker threads per search (the thread-count scenario axis):
    /// `Some(1)` pins the sequential trace the paper's figures measure,
    /// `None` uses every core, `Some(n)` pins a pool size. The
    /// `micro_parallel` bench sweeps this axis.
    pub parallelism: Option<usize>,
}

impl Default for HarnessCaps {
    fn default() -> Self {
        Self {
            max_candidates: 200_000,
            max_concretizations: 20_000,
            max_alignments: 20_000,
            time_budget_ms: Some(8_000),
            // Figure benches reproduce the paper's single-threaded runtimes
            // by default; opt into the parallel engine per scenario.
            parallelism: Some(1),
        }
    }
}

/// A ready-to-search scenario: database, compatible tree, K-example.
#[derive(Debug)]
pub struct Scenario {
    /// Workload name (e.g. `TPCH-Q3`).
    pub name: String,
    /// The hidden query that produced the example.
    pub query: Cq,
    /// The annotated database.
    pub db: Database,
    /// The abstraction tree.
    pub tree: AbstractionTree,
    /// The K-example to abstract.
    pub example: KExample,
}

/// Builds one scenario per TPC-H workload query. Queries that cannot yield
/// `settings.rows` output rows at this scale are skipped.
pub fn tpch_scenarios(settings: &ScenarioSettings) -> Vec<Scenario> {
    let cfg = TpchConfig {
        lineitem_rows: settings.tpch_lineitems,
        seed: settings.seed,
    };
    let (db_proto, rels) = tpch::generate(&cfg);
    tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .filter_map(|Workload { name, query }| {
            let mut db = db_proto.clone();
            let example = kexample_for_mode(&db, &query, settings.rows, settings.plan_mode)?;
            let tree = tpch::tpch_tree_covering(
                &mut db,
                &rels,
                &example,
                settings.tree_leaves,
                settings.tree_height,
                settings.seed,
                settings.shuffle_tree,
            );
            Some(Scenario {
                name,
                query,
                db,
                tree,
                example,
            })
        })
        .collect()
}

/// Builds one scenario per IMDB workload query (the ontology tree covers
/// every annotation, so no per-query tree is needed — but the tree is built
/// per scenario because labels are interned into the database registry).
pub fn imdb_scenarios(settings: &ScenarioSettings) -> Vec<Scenario> {
    let cfg = ImdbConfig {
        num_people: settings.imdb_people,
        num_movies: settings.imdb_movies,
        cast_per_movie: 5,
        seed: settings.seed,
    };
    let (db_proto, rels) = imdb::generate(&cfg);
    imdb::imdb_queries(db_proto.schema())
        .into_iter()
        .filter_map(|Workload { name, query }| {
            let mut db = db_proto.clone();
            let example = kexample_for_mode(&db, &query, settings.rows, settings.plan_mode)?;
            let tree = imdb::imdb_tree(&mut db, &rels);
            Some(Scenario {
                name,
                query,
                db,
                tree,
                example,
            })
        })
        .collect()
}

/// Runs Algorithm 2 on a scenario, measuring wall time and the optimum's
/// metrics. `tweak` can adjust the search configuration (ablations,
/// distributions, thresholds).
pub fn run_search(
    scenario: &Scenario,
    threshold: usize,
    caps: &HarnessCaps,
    param: &str,
    tweak: impl FnOnce(&mut SearchConfig),
) -> Measurement {
    let mut cfg = SearchConfig {
        privacy: PrivacyConfig {
            threshold,
            max_alignments: caps.max_alignments,
            max_concretizations: caps.max_concretizations,
            ..Default::default()
        },
        max_candidates: caps.max_candidates,
        time_budget_ms: caps.time_budget_ms,
        distribution: LoiDistribution::Uniform,
        parallelism: caps.parallelism,
        ..Default::default()
    };
    tweak(&mut cfg);
    let bound = match Bound::new(&scenario.db, &scenario.tree, &scenario.example) {
        Ok(b) => b,
        Err(e) => {
            return Measurement {
                query: scenario.name.clone(),
                param: param.to_owned(),
                runtime_ms: 0.0,
                found: false,
                privacy: 0,
                loi: f64::NAN,
                edges: 0,
                abstractions: 0,
                privacy_evals: 0,
                truncated: true,
                note: format!("bind failed: {e}"),
            }
        }
    };
    let start = Instant::now();
    let out = find_optimal_abstraction(&bound, &cfg);
    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
    let (found, privacy, loi, edges) = match &out.best {
        Some(b) => (true, b.privacy, b.loi, b.edges_used),
        None => (false, 0, f64::NAN, 0),
    };
    Measurement {
        query: scenario.name.clone(),
        param: param.to_owned(),
        runtime_ms,
        found,
        privacy,
        loi,
        edges,
        abstractions: out.stats.abstractions_enumerated,
        privacy_evals: out.stats.privacy_evaluations,
        truncated: out.stats.truncated || out.stats.privacy_stats.truncated,
        note: String::new(),
    }
}
