//! The execution-comparison axis: the vectorized block-at-a-time pipeline
//! versus the scalar binding-at-a-time engine it generalizes (the
//! `micro_vectorized` bench and the `BENCH_7.json` CI perf gate both drive
//! this).
//!
//! One scenario family, `eval/<query>` — a full evaluation of a TPC-H or
//! IMDB workload query, run once under [`Execution::Block`] and once under
//! [`Execution::Scalar`], same plan. The engines count their own
//! deterministic work ([`provabs_relational::EvalWork`]):
//!
//! * **probe-hash bytes** — the scalar engine hashes one `ValueId` per
//!   bound column per candidate binding; the block engine hashes only the
//!   constants (once per evaluation) and resolves every per-binding lookup
//!   through sorted merges with galloping, so its hash bytes collapse to
//!   near zero and the search work shows up in `gallop_steps` instead.
//! * **moved id bytes** — the scalar engine re-materializes every binding
//!   vector; the block engine moves one row index and one parent pointer
//!   per selection survivor and walks the parent chain only for rows that
//!   reach materialization.
//!
//! The counters are machine-independent (same database, same query, same
//! plan ⇒ same bytes), so the gate is immune to runner noise; wall-clock
//! columns are carried for humans. Correctness is witnessed per scenario
//! against both the scalar engine and the structurally independent naive
//! owned-value oracle ([`provabs_relational::oracle`]) — a metric with
//! `equal: true` *is* the correctness witness.

use crate::report::VectorizedMetric;
use provabs_datagen::imdb::{self, ImdbConfig};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::{Cq, Database, Evaluator, Execution, PlanMode};
use std::time::Instant;

/// Shape of one vectorized-comparison sweep.
#[derive(Debug, Clone)]
pub struct VectorizedSettings {
    /// TPC-H scale (lineitem rows). Keep oracle-feasible: the reference
    /// evaluator joins by naive scans.
    pub lineitem_rows: usize,
    /// IMDB scale (people).
    pub imdb_people: usize,
    /// IMDB scale (movies).
    pub imdb_movies: usize,
    /// TPC-H workload queries swept by the `eval/` scenarios.
    pub tpch_queries: Vec<String>,
    /// IMDB workload queries swept by the `eval/` scenarios.
    pub imdb_queries: Vec<String>,
    /// Block size of the vectorized runs.
    pub block_size: usize,
    /// Generator seed.
    pub seed: u64,
    /// Atom-order mode of every evaluation — both engines execute the
    /// *same* plan, so the comparison isolates execution strategy.
    pub plan_mode: PlanMode,
}

impl Default for VectorizedSettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 600,
            imdb_people: 150,
            imdb_movies: 150,
            tpch_queries: vec!["TPCH-Q3".into(), "TPCH-Q4".into(), "TPCH-Q10".into()],
            imdb_queries: vec!["IMDB-Q2".into(), "IMDB-Q5".into()],
            block_size: provabs_relational::DEFAULT_BLOCK_SIZE,
            seed: 42,
            plan_mode: PlanMode::CostBased,
        }
    }
}

impl VectorizedSettings {
    /// The fixed configuration of the CI perf gate: small enough for a
    /// 1-CPU runner, deterministic, and the shape `BENCH_7.json` is built
    /// from. Changing this invalidates the checked-in baseline — re-emit
    /// it.
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// Runs every scenario of `settings`, returning one metric per scenario.
pub fn run_vectorized_comparison(settings: &VectorizedSettings) -> Vec<VectorizedMetric> {
    let mut out = Vec::new();
    let (tpch_db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    let tpch_workloads = tpch::tpch_queries(tpch_db.schema());
    for qname in &settings.tpch_queries {
        if let Some(w) = tpch_workloads.iter().find(|w| &w.name == qname) {
            out.push(eval_metric(&tpch_db, qname, &w.query, settings));
        }
    }
    let (imdb_db, _) = imdb::generate(&ImdbConfig {
        num_people: settings.imdb_people,
        num_movies: settings.imdb_movies,
        cast_per_movie: 5,
        seed: settings.seed,
    });
    let imdb_workloads = imdb::imdb_queries(imdb_db.schema());
    for qname in &settings.imdb_queries {
        if let Some(w) = imdb_workloads.iter().find(|w| &w.name == qname) {
            out.push(eval_metric(&imdb_db, qname, &w.query, settings));
        }
    }
    out
}

/// One `eval/` scenario: the same query evaluated by both engines under
/// the same plan, counters from each engine, three-way equality with the
/// owned-value oracle.
fn eval_metric(
    db_proto: &Database,
    qname: &str,
    query: &Cq,
    settings: &VectorizedSettings,
) -> VectorizedMetric {
    let mut db = db_proto.clone();
    db.build_indexes();
    let t0 = Instant::now();
    let (block_out, block_work) = Evaluator::new(&db)
        .plan(settings.plan_mode)
        .execution(Execution::Block {
            block_size: settings.block_size,
        })
        .eval_cq(query);
    let block_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let (scalar_out, scalar_work) = Evaluator::new(&db)
        .plan(settings.plan_mode)
        .execution(Execution::Scalar)
        .eval_cq(query);
    let scalar_ms = t1.elapsed().as_secs_f64() * 1e3;
    let oracle = oracle_eval_cq(&db, query);
    VectorizedMetric {
        name: format!("eval/{qname}"),
        block_probes: block_work.probes,
        scalar_probes: scalar_work.probes,
        block_probe_bytes: block_work.probe_bytes_id,
        scalar_probe_bytes: scalar_work.probe_bytes_id,
        block_moved_bytes: block_work.boundary_bytes,
        scalar_moved_bytes: scalar_work.boundary_bytes,
        blocks_emitted: block_work.blocks_emitted,
        selection_survivors: block_work.selection_survivors,
        gallop_steps: block_work.gallop_steps,
        block_ms,
        scalar_ms,
        equal: block_out == scalar_out && block_out == oracle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> VectorizedSettings {
        VectorizedSettings {
            lineitem_rows: 300,
            tpch_queries: vec!["TPCH-Q4".into()],
            imdb_queries: vec!["IMDB-Q2".into()],
            ..Default::default()
        }
    }

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let metrics = run_vectorized_comparison(&quick_settings());
        assert_eq!(metrics.len(), 2);
        for m in &metrics {
            assert!(
                m.equal,
                "{}: block engine diverged from scalar/oracle",
                m.name
            );
            assert!(
                m.block_probe_bytes * 2 <= m.scalar_probe_bytes,
                "{}: probe bytes {} vs scalar {} — below the 2x bar",
                m.name,
                m.block_probe_bytes,
                m.scalar_probe_bytes
            );
            assert!(
                m.block_moved_bytes * 2 <= m.scalar_moved_bytes,
                "{}: moved bytes {} vs scalar {} — below the 2x bar",
                m.name,
                m.block_moved_bytes,
                m.scalar_moved_bytes
            );
            assert!(m.blocks_emitted > 0, "{}: no blocks emitted", m.name);
        }
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let settings = VectorizedSettings {
            tpch_queries: vec!["TPCH-Q4".into()],
            imdb_queries: vec!["IMDB-Q2".into()],
            ..VectorizedSettings::ci_gate()
        };
        let a = run_vectorized_comparison(&settings);
        let b = run_vectorized_comparison(&settings);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.block_probes, y.block_probes, "{}", x.name);
            assert_eq!(x.block_probe_bytes, y.block_probe_bytes, "{}", x.name);
            assert_eq!(x.scalar_probe_bytes, y.scalar_probe_bytes, "{}", x.name);
            assert_eq!(x.block_moved_bytes, y.block_moved_bytes, "{}", x.name);
            assert_eq!(x.scalar_moved_bytes, y.scalar_moved_bytes, "{}", x.name);
            assert_eq!(x.blocks_emitted, y.blocks_emitted, "{}", x.name);
            assert_eq!(x.gallop_steps, y.gallop_steps, "{}", x.name);
        }
    }
}
