//! The service axis: closed-loop multi-session runs against the
//! `provabsd` snapshot-isolated service (the `micro_service` bench and the
//! `BENCH_8.json` CI perf gate both drive this).
//!
//! Every scenario generates a TPC-H database, brings [`Provabsd`] up over
//! an in-memory [`FaultyVfs`], and drives the deterministic zipf-skewed
//! closed-loop schedule from [`provabs_datagen::service_schedule`]: reader
//! sessions pin snapshots and evaluate query templates while the single
//! writer applies churn batches and publishes epochs. Four scenarios probe
//! the service's robustness contracts:
//!
//! * `closed-loop/zipf` — the healthy path: everything completes, the
//!   writer publishes one epoch per batch;
//! * `overload/admission` — the whole queue is pre-admitted, so every
//!   query must be rejected fail-fast with zero evaluation work;
//! * `budget/cancellation` — a tight per-request work budget forces the
//!   engine to stop requests exactly at the derivation cap;
//! * `degraded/readonly` — a crash injected mid-stream poisons the
//!   writer after its bounded retries; reads keep completing against the
//!   last published epoch while every further write fails fast.
//!
//! Every compared counter (completions, rejections, cancellations, epochs,
//! peak per-request work) is a pure function of the seed: the schedule,
//! the churn stream, the budget cancellation point, and the injected crash
//! are all op-sequence driven, never wall-clock driven. The `equal` column
//! asserts the final pinned snapshot replays an offline oracle — the seed
//! database with exactly the acknowledged churn prefix applied —
//! bit-for-bit, answers and work counters alike.

use crate::report::ServiceMetric;
use provabs_datagen::tpch::{self, tpch_queries, TpchConfig};
use provabs_datagen::{
    service_schedule, ChurnConfig, ChurnGenerator, ServiceOp, ServiceWorkloadConfig, Workload,
};
use provabs_relational::storage::{Fault, FaultyVfs, SharedVfs};
use provabs_relational::{Database, Evaluator};
use provabsd::{Provabsd, ServiceConfig, ServiceError, Session};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shape of one service sweep.
#[derive(Debug, Clone)]
pub struct ServiceSettings {
    /// TPC-H scale (lineitem rows).
    pub lineitem_rows: usize,
    /// Operations per scenario (queries + update slots).
    pub operations: usize,
    /// Closed-loop reader clients.
    pub clients: usize,
    /// Zipf exponent of the template popularity skew.
    pub zipf_s: f64,
    /// Every `update_every`-th operation is a writer churn batch.
    pub update_every: usize,
    /// Workload / churn / generator seed.
    pub seed: u64,
    /// The healthy per-request work budget (derivations).
    pub work_budget: u64,
    /// The deliberately tight budget of the cancellation scenario.
    pub tight_budget: u64,
    /// Admission queue capacity.
    pub queue_capacity: usize,
}

impl Default for ServiceSettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 200,
            operations: 48,
            clients: 4,
            zipf_s: 1.1,
            update_every: 8,
            seed: 42,
            work_budget: 1 << 20,
            tight_budget: 64,
            queue_capacity: 8,
        }
    }
}

impl ServiceSettings {
    /// The settings the CI gate runs (and `BENCH_8.json` was emitted with).
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// One service scenario: its injected faults, held queue slots, and
/// per-request budget.
struct Scenario {
    name: &'static str,
    faults: Vec<Fault>,
    hold: usize,
    work_budget: u64,
}

const BASE: &str = "bench-svc";

/// Runs the full service comparison: the four fixed scenarios under
/// `settings`, returning one metric per scenario.
pub fn run_service_comparison(settings: &ServiceSettings) -> Vec<ServiceMetric> {
    let scenarios = [
        Scenario {
            name: "closed-loop/zipf",
            faults: Vec::new(),
            hold: 0,
            work_budget: settings.work_budget,
        },
        Scenario {
            name: "overload/admission",
            faults: Vec::new(),
            hold: settings.queue_capacity,
            work_budget: settings.work_budget,
        },
        Scenario {
            name: "budget/cancellation",
            faults: Vec::new(),
            hold: 0,
            work_budget: settings.tight_budget,
        },
        Scenario {
            name: "degraded/readonly",
            faults: vec![Fault::CrashBeforeWrite(degrade_boundary(settings))],
            hold: 0,
            work_budget: settings.work_budget,
        },
    ];
    scenarios
        .iter()
        .map(|sc| run_scenario(sc, settings))
        .collect()
}

fn seed_db(settings: &ServiceSettings) -> (Database, Vec<Workload>) {
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    db.build_indexes();
    let templates = tpch_queries(db.schema());
    (db, templates)
}

fn config(settings: &ServiceSettings, work_budget: u64) -> ServiceConfig {
    ServiceConfig {
        queue_capacity: settings.queue_capacity,
        work_budget,
        max_retries: 1,
        backoff_base: 1,
        ..Default::default()
    }
}

fn churn(settings: &ServiceSettings) -> ChurnGenerator {
    ChurnGenerator::new(&ChurnConfig {
        batch_size: 8,
        insert_ratio: 0.7,
        seed: settings.seed,
    })
}

/// Dry run locating the crash boundary of `degraded/readonly`: the first
/// VFS write of the *third* churn transaction. Queries never touch the
/// VFS, so creating the service and applying the first two batches walks
/// exactly the same op sequence the real scenario walks up to that point.
fn degrade_boundary(settings: &ServiceSettings) -> u64 {
    let (db, _) = seed_db(settings);
    let faulty = Arc::new(Mutex::new(FaultyVfs::new()));
    let vfs: SharedVfs = faulty.clone();
    let svc = Provabsd::create(vfs, BASE, db, config(settings, settings.work_budget))
        .expect("create on a fault-free VFS");
    let mut churn = churn(settings);
    for _ in 0..2 {
        let delta = churn.next_batch(svc.session().db());
        svc.apply(&delta).expect("apply on a fault-free VFS");
    }
    let count = faulty.lock().unwrap().write_count();
    count
}

fn run_scenario(sc: &Scenario, settings: &ServiceSettings) -> ServiceMetric {
    let (db, templates) = seed_db(settings);
    let mut oracle = db.clone();
    let vfs: SharedVfs = Arc::new(Mutex::new(FaultyVfs::with_faults(sc.faults.clone())));
    let svc = Provabsd::create(vfs, BASE, db, config(settings, sc.work_budget))
        .expect("create precedes any injected fault");

    // Pre-admitted requests held for the whole run: each occupies a queue
    // slot, so holding the full capacity forces every query to be
    // rejected fail-fast.
    let held: Vec<_> = (0..sc.hold)
        .map(|_| svc.acquire(1).expect("holds fit the empty queue"))
        .collect();

    let schedule = service_schedule(&ServiceWorkloadConfig {
        clients: settings.clients,
        operations: settings.operations,
        templates: templates.len(),
        zipf_s: settings.zipf_s,
        update_every: settings.update_every,
        seed: settings.seed,
    });
    let mut churn = churn(settings);

    // The closed loop, mirroring the `provabsd` binary: each client
    // re-pins only when the epoch advanced past its session.
    let mut sessions: Vec<Option<Session>> = vec![None; settings.clients.max(1)];
    let (mut completed, mut rejected, mut cancelled) = (0u64, 0u64, 0u64);
    let (mut applied, mut degraded_writes, mut answer_rows) = (0u64, 0u64, 0u64);
    let start = Instant::now();
    for op in &schedule {
        match *op {
            ServiceOp::Query { client, template } => {
                let slot = &mut sessions[client];
                let stale = slot
                    .as_ref()
                    .is_none_or(|s| s.epoch() < svc.registry().epoch());
                if stale {
                    *slot = Some(svc.session());
                }
                match slot
                    .as_ref()
                    .expect("just pinned")
                    .query(&templates[template].query)
                {
                    Ok(out) => {
                        completed += 1;
                        answer_rows += out.rows.len() as u64;
                    }
                    Err(ServiceError::Overloaded { .. }) => rejected += 1,
                    Err(ServiceError::BudgetExhausted { .. }) => cancelled += 1,
                    Err(e) => panic!("{}: unexpected read error: {e}", sc.name),
                }
            }
            ServiceOp::Update => {
                let delta = churn.next_batch(svc.session().db());
                match svc.apply(&delta) {
                    Ok(_) => {
                        applied += 1;
                        oracle.apply_delta(&delta);
                    }
                    Err(ServiceError::Degraded { .. }) => degraded_writes += 1,
                    Err(e) => panic!("{}: unexpected writer error: {e}", sc.name),
                }
            }
        }
    }
    let run_ms = start.elapsed().as_secs_f64() * 1e3;
    drop(held);

    // The oracle replay: the final pinned snapshot must be bit-for-bit
    // the seed plus the acknowledged churn prefix — state, per-template
    // answers, and engine work counters alike. Evaluated directly (not
    // through admission) so held permits and tight budgets cannot mask a
    // divergence.
    let snapshot = svc.session();
    let mut equal = snapshot.db().database().same_state(&oracle);
    for w in &templates {
        let want = Evaluator::new(&oracle).eval_cq(&w.query);
        let got = Evaluator::new(snapshot.db()).eval_cq(&w.query);
        equal &= got == want;
    }

    let stats = svc.stats();
    ServiceMetric {
        name: sc.name.to_owned(),
        operations: schedule.len() as u64,
        completed,
        rejected,
        cancelled,
        answer_rows,
        applied_txns: applied,
        degraded_writes,
        epochs_published: stats.epochs_published,
        writer_retries: stats.writer_retries,
        max_request_work: stats.max_request_work,
        work_budget: sc.work_budget,
        run_ms,
        equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServiceSettings {
        ServiceSettings {
            lineitem_rows: 80,
            operations: 24,
            ..Default::default()
        }
    }

    #[test]
    fn scenarios_uphold_their_contracts() {
        let metrics = run_service_comparison(&small());
        assert_eq!(metrics.len(), 4);
        for m in &metrics {
            assert!(
                m.equal,
                "{}: snapshot diverged from the oracle replay",
                m.name
            );
            assert!(
                m.max_request_work <= m.work_budget,
                "{}: request work {} escaped the budget {}",
                m.name,
                m.max_request_work,
                m.work_budget
            );
        }
        let by_name = |n: &str| metrics.iter().find(|m| m.name == n).unwrap();

        let healthy = by_name("closed-loop/zipf");
        assert!(healthy.completed > 0 && healthy.rejected == 0 && healthy.cancelled == 0);
        assert!(healthy.applied_txns > 0);
        assert_eq!(healthy.epochs_published, healthy.applied_txns);

        let overload = by_name("overload/admission");
        assert_eq!(overload.completed, 0, "held queue must reject every query");
        assert!(overload.rejected > 0);
        assert_eq!(overload.max_request_work, 0, "rejection must precede work");
        assert_eq!(
            overload.applied_txns, healthy.applied_txns,
            "writer bypasses admission"
        );

        let budget = by_name("budget/cancellation");
        assert!(
            budget.cancelled > 0,
            "the tight budget must cancel something"
        );
        assert_eq!(
            budget.max_request_work, budget.work_budget,
            "cancellation stops exactly at the cap"
        );

        let degraded = by_name("degraded/readonly");
        assert_eq!(degraded.applied_txns, 2, "the crash fires in transaction 3");
        assert!(degraded.degraded_writes > 0, "later writes must fail fast");
        assert!(
            degraded.completed > 0,
            "reads keep completing while degraded"
        );
        assert_eq!(
            degraded.epochs_published, 2,
            "zero writer progress after the crash"
        );
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let a = run_service_comparison(&small());
        let b = run_service_comparison(&small());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.operations, y.operations, "{}", x.name);
            assert_eq!(x.completed, y.completed, "{}", x.name);
            assert_eq!(x.rejected, y.rejected, "{}", x.name);
            assert_eq!(x.cancelled, y.cancelled, "{}", x.name);
            assert_eq!(x.answer_rows, y.answer_rows, "{}", x.name);
            assert_eq!(x.applied_txns, y.applied_txns, "{}", x.name);
            assert_eq!(x.degraded_writes, y.degraded_writes, "{}", x.name);
            assert_eq!(x.epochs_published, y.epochs_published, "{}", x.name);
            assert_eq!(x.writer_retries, y.writer_retries, "{}", x.name);
            assert_eq!(x.max_request_work, y.max_request_work, "{}", x.name);
        }
    }
}
