//! The interning-comparison axis: memoized hash-consed provenance versus
//! the owned-polynomial path on the TPC-H abstraction-search scenario (the
//! `micro_intern` bench and the `BENCH_3.json` CI perf gate both drive
//! this).
//!
//! Two scenario families, each contributing deterministic work counters the
//! gate can diff:
//!
//! * `search/<query>` — Algorithm 2 runs twice per mode (a cold search plus
//!   a repeat, the incremental engine's warm-restart pattern). The counter
//!   is **rows re-abstracted**: with
//!   [`SearchConfig::memoize_abstractions`] each distinct
//!   `(row provenance, per-row lifts)` pair is materialized once per bound;
//!   without it every privacy-evaluated candidate re-abstracts every row.
//! * `eval/<query>` — the same workload query evaluated for several rounds.
//!   The counter is **retained polynomial/monomial constructions**: the
//!   owned boundary (`eval_cq` creates a throwaway arena per call — that
//!   *is* its implementation) pays fresh constructions every evaluation,
//!   the interned path keeps one [`ProvStore`] whose hash-consing answers
//!   later rounds in O(1).
//!
//! Measurement scope, stated plainly: both `eval/` modes run the same join
//! engine — the comparison isolates *arena persistence* (cross-evaluation
//! reuse), not engine-vs-engine speed, and with perfect reuse the ratio is
//! structurally `1/eval_rounds` (the gate pins `eval_rounds`, so the
//! baseline ratio is meaningful and a rising ratio means the memo stopped
//! hitting). The `search/` scenarios are the true A/B against the
//! owned-application path ([`Abstraction::apply`](provabs_core::Abstraction)
//! per candidate).
//!
//! Result equality between the two modes is asserted inside each scenario,
//! so a run that completes with `equal: true` *is* the correctness witness.

use crate::report::InternMetric;
use crate::scenario::{tpch_scenarios, Scenario, ScenarioSettings};
use provabs_core::privacy::{PrivacyCache, PrivacyConfig};
use provabs_core::search::{find_optimal_abstraction_with_cache, SearchConfig, SearchOutcome};
use provabs_core::Bound;
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_relational::{Evaluator, Execution, PlanMode};
use provabs_semiring::ProvStore;
use std::time::Instant;

/// Shape of one interning-comparison sweep.
#[derive(Debug, Clone)]
pub struct InternSettings {
    /// TPC-H scale (lineitem rows).
    pub lineitem_rows: usize,
    /// Abstraction-tree leaves for the search scenarios.
    pub tree_leaves: usize,
    /// Abstraction-tree height.
    pub tree_height: u32,
    /// K-example rows.
    pub example_rows: usize,
    /// Privacy threshold `k` of the search scenarios.
    pub threshold: usize,
    /// Candidate cap per search (deterministic truncation).
    pub max_candidates: usize,
    /// Concretization cap per privacy evaluation.
    pub max_concretizations: usize,
    /// Alignment cap per consistency call.
    pub max_alignments: usize,
    /// Searches per mode (cold + repeats; ≥ 2 exercises the warm path).
    pub search_repeats: usize,
    /// Workload queries swept by the `search/` scenarios.
    pub search_queries: Vec<String>,
    /// Evaluation rounds per `eval/` scenario.
    pub eval_rounds: usize,
    /// Workload queries swept by the `eval/` scenarios.
    pub eval_queries: Vec<String>,
    /// Generator / tree seed.
    pub seed: u64,
    /// Atom-order mode of every evaluation (scenario construction and the
    /// `eval/` rounds). Defaults to [`PlanMode::Greedy`] — the pre-planner
    /// order the checked-in `BENCH_3.json` scenarios were built under (the
    /// output-capped K-example extraction keeps a different output subset
    /// under a different plan).
    pub plan_mode: PlanMode,
}

impl Default for InternSettings {
    fn default() -> Self {
        Self {
            lineitem_rows: 600,
            tree_leaves: 48,
            tree_height: 4,
            example_rows: 2,
            threshold: 3,
            max_candidates: 4_000,
            max_concretizations: 3_000,
            max_alignments: 3_000,
            search_repeats: 2,
            search_queries: vec!["TPCH-Q3".into(), "TPCH-Q10".into()],
            eval_rounds: 3,
            eval_queries: vec!["TPCH-Q3".into(), "TPCH-Q4".into(), "TPCH-Q10".into()],
            seed: 42,
            plan_mode: PlanMode::Greedy,
        }
    }
}

impl InternSettings {
    /// The fixed configuration of the CI perf gate: small enough for a
    /// 1-CPU runner, deterministic (sequential search, no time budget), and
    /// the shape `BENCH_3.json` is built from. Changing this invalidates
    /// the checked-in baseline — re-emit it.
    pub fn ci_gate() -> Self {
        Self::default()
    }
}

/// Runs every scenario of `settings`, returning one metric per scenario.
pub fn run_intern_comparison(settings: &InternSettings) -> Vec<InternMetric> {
    let mut out = Vec::new();
    let scenario_settings = ScenarioSettings {
        threshold: settings.threshold,
        tree_leaves: settings.tree_leaves,
        tree_height: settings.tree_height,
        rows: settings.example_rows,
        tpch_lineitems: settings.lineitem_rows,
        seed: settings.seed,
        plan_mode: settings.plan_mode,
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&scenario_settings);
    for qname in &settings.search_queries {
        let Some(s) = scenarios.iter().find(|s| &s.name == qname) else {
            continue;
        };
        if let Some(m) = search_metric(s, settings) {
            out.push(m);
        }
    }
    let (db_proto, _) = tpch::generate(&TpchConfig {
        lineitem_rows: settings.lineitem_rows,
        seed: settings.seed,
    });
    let mut db = db_proto;
    db.build_indexes();
    let workloads = tpch::tpch_queries(db.schema());
    // The eval rounds read the mode back from the search configuration's
    // `plan_queries` — the single declaration point for "how evaluations on
    // behalf of this comparison plan their joins".
    let eval_mode = search_config(settings, true).plan_queries;
    for qname in &settings.eval_queries {
        let Some(w) = workloads.iter().find(|w| &w.name == qname) else {
            continue;
        };
        out.push(eval_metric(
            &db,
            qname,
            &w.query,
            settings.eval_rounds,
            eval_mode,
        ));
    }
    out
}

fn search_config(settings: &InternSettings, memoize: bool) -> SearchConfig {
    SearchConfig {
        privacy: PrivacyConfig {
            threshold: settings.threshold,
            max_concretizations: settings.max_concretizations,
            max_alignments: settings.max_alignments,
            ..Default::default()
        },
        max_candidates: settings.max_candidates,
        time_budget_ms: None, // wall-clock budgets break determinism
        parallelism: Some(1),
        memoize_abstractions: memoize,
        plan_queries: settings.plan_mode,
        ..Default::default()
    }
}

/// Fingerprint of a search outcome for the cross-mode equality check.
fn outcome_key(out: &SearchOutcome) -> Option<(Vec<Vec<u32>>, usize, u32, u64)> {
    out.best.as_ref().map(|b| {
        (
            b.abstraction.lifts.clone(),
            b.privacy,
            b.edges_used,
            b.loi.to_bits(),
        )
    })
}

/// One `search/` scenario: `search_repeats` searches per mode on one bound,
/// counting rows re-abstracted.
fn search_metric(scenario: &Scenario, settings: &InternSettings) -> Option<InternMetric> {
    let bound = Bound::new(&scenario.db, &scenario.tree, &scenario.example).ok()?;
    let run_mode = |memoize: bool| {
        let cfg = search_config(settings, memoize);
        let cache = PrivacyCache::new();
        let mut rows_abstracted = 0u64;
        let mut hits = 0u64;
        let mut last = None;
        let t0 = Instant::now();
        for _ in 0..settings.search_repeats.max(1) {
            let out = find_optimal_abstraction_with_cache(&bound, &cfg, &cache);
            rows_abstracted += out.stats.rows_abstracted as u64;
            hits += out.stats.abs_cache_hits as u64;
            last = Some(out);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        (rows_abstracted, hits, ms, last.expect("ran at least once"))
    };
    let (owned_work, _, owned_ms, owned_out) = run_mode(false);
    let (cached_work, memo_hits, cached_ms, cached_out) = run_mode(true);
    Some(InternMetric {
        name: format!("search/{}", scenario.name),
        cached_work,
        owned_work,
        memo_hits,
        memo_misses: cached_work,
        cached_ms,
        owned_ms,
        equal: outcome_key(&owned_out) == outcome_key(&cached_out),
    })
}

/// One `eval/` scenario: `rounds` evaluations of the same query — fresh
/// arena per round (the owned boundary) versus one persistent arena —
/// counting retained constructions.
fn eval_metric(
    db: &provabs_relational::Database,
    qname: &str,
    query: &provabs_relational::Cq,
    rounds: usize,
    mode: PlanMode,
) -> InternMetric {
    let rounds = rounds.max(1);
    let mut owned_work = 0u64;
    let mut owned_ms = 0.0f64;
    let mut owned_results = Vec::with_capacity(rounds);
    // BENCH_3 replays counters recorded on the scalar engine.
    let eval = Evaluator::new(db).plan(mode).execution(Execution::Scalar);
    for _ in 0..rounds {
        let t0 = Instant::now();
        let mut store = ProvStore::new();
        let (out, _) = eval.interned(&mut store).eval_cq(query);
        let owned = out.to_krelation(&store);
        owned_ms += t0.elapsed().as_secs_f64() * 1e3;
        owned_work += store.work().constructions();
        owned_results.push(owned);
    }
    let mut store = ProvStore::new();
    let mut cached_ms = 0.0f64;
    let mut cached_results = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        let (out, _) = eval.interned(&mut store).eval_cq(query);
        cached_ms += t0.elapsed().as_secs_f64() * 1e3;
        cached_results.push(out.to_krelation(&store));
    }
    let w = store.work();
    InternMetric {
        name: format!("eval/{qname}"),
        cached_work: w.constructions(),
        owned_work,
        memo_hits: w.mono_hits + w.poly_hits + w.memo_hits,
        memo_misses: w.constructions() + w.memo_misses,
        cached_ms,
        owned_ms,
        equal: owned_results == cached_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> InternSettings {
        InternSettings {
            lineitem_rows: 300,
            search_queries: vec!["TPCH-Q3".into()],
            eval_queries: vec!["TPCH-Q4".into()],
            ..Default::default()
        }
    }

    #[test]
    fn comparison_confirms_equality_and_savings() {
        let metrics = run_intern_comparison(&quick_settings());
        assert_eq!(metrics.len(), 2);
        for m in &metrics {
            assert!(m.equal, "{}: memoized path diverged from owned", m.name);
            assert!(
                m.cached_work * 2 <= m.owned_work,
                "{}: cached {} vs owned {} — below the 2x bar",
                m.name,
                m.cached_work,
                m.owned_work
            );
        }
    }

    #[test]
    fn gate_settings_are_deterministic() {
        let settings = InternSettings {
            search_queries: vec!["TPCH-Q3".into()],
            eval_queries: vec!["TPCH-Q4".into()],
            ..InternSettings::ci_gate()
        };
        let a = run_intern_comparison(&settings);
        let b = run_intern_comparison(&settings);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cached_work, y.cached_work, "{}", x.name);
            assert_eq!(x.owned_work, y.owned_work, "{}", x.name);
            assert_eq!(x.memo_hits, y.memo_hits, "{}", x.name);
        }
    }
}
