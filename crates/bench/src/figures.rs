//! One runner per figure/table of the paper's evaluation (§5.2).

use crate::report::Measurement;
use crate::scenario::{
    imdb_scenarios, run_search, tpch_scenarios, HarnessCaps, Scenario, ScenarioSettings,
};
use provabs_core::compression::compression_baseline_with_budget;
use provabs_core::loi::{LeafWeights, LoiDistribution};
use provabs_core::privacy::PrivacyConfig;
use provabs_core::{fixtures, Bound};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{join_variants, kexample_for};
use provabs_reveng::{cim_queries, enumerate_consistent_queries, ContainmentMode, RevOptions};

/// Which workloads a figure runs over.
fn default_scenarios(settings: &ScenarioSettings) -> Vec<Scenario> {
    let mut v = tpch_scenarios(settings);
    v.extend(imdb_scenarios(settings));
    v
}

/// The query subset plotted by the paper (§5.1 omits TPCH-Q5/Q9 and
/// IMDB-Q3/Q4 whose curves duplicate others).
fn plotted(scenarios: Vec<Scenario>) -> Vec<Scenario> {
    scenarios
        .into_iter()
        .filter(|s| {
            !matches!(
                s.name.as_str(),
                "TPCH-Q5" | "TPCH-Q9" | "IMDB-Q3" | "IMDB-Q4"
            )
        })
        .collect()
}

/// Figures 9, 10, 11: runtime / optimal abstraction size / LOI for varying
/// privacy thresholds (paper: k = 2..20).
pub fn fig09_to_11(
    settings: &ScenarioSettings,
    caps: &HarnessCaps,
    thresholds: &[usize],
) -> Vec<Measurement> {
    let scenarios = plotted(default_scenarios(settings));
    let mut out = Vec::new();
    for s in &scenarios {
        for &k in thresholds {
            out.push(run_search(s, k, caps, &k.to_string(), |_| {}));
        }
    }
    out
}

/// Figures 12, 13: runtime / abstraction size for varying tree size
/// (paper: 10K..810K leaves in x3 steps; harness scales down, same x3
/// progression).
pub fn fig12_13(
    settings: &ScenarioSettings,
    caps: &HarnessCaps,
    leaf_counts: &[usize],
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &leaves in leaf_counts {
        let mut st = settings.clone();
        st.tree_leaves = leaves;
        st.tpch_lineitems = st.tpch_lineitems.max(leaves);
        for s in plotted(default_scenarios(&st)) {
            out.push(run_search(
                &s,
                st.threshold,
                caps,
                &leaves.to_string(),
                |_| {},
            ));
        }
    }
    out
}

/// Figures 14, 15: runtime / abstraction size for varying tree height.
pub fn fig14_15(
    settings: &ScenarioSettings,
    caps: &HarnessCaps,
    heights: &[u32],
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &h in heights {
        let mut st = settings.clone();
        st.tree_height = h;
        // The IMDB ontology tree has a fixed shape; the height experiment is
        // a TPC-H experiment (the paper varies the generated tree).
        for s in plotted(tpch_scenarios(&st)) {
            out.push(run_search(&s, st.threshold, caps, &h.to_string(), |_| {}));
        }
    }
    out
}

/// Figure 16: runtime for varying number of joins. The paper uses the
/// queries with ≥ 6 joins (TPCH Q5/Q7/Q9/Q21, IMDB Q2/Q4/Q7), starting from
/// a 3-join version and adding one atom per tick.
pub fn fig16(settings: &ScenarioSettings, caps: &HarnessCaps) -> Vec<Measurement> {
    let names = [
        "TPCH-Q5", "TPCH-Q7", "TPCH-Q9", "TPCH-Q21", "IMDB-Q2", "IMDB-Q4", "IMDB-Q7",
    ];
    let mut out = Vec::new();
    let cfg = TpchConfig {
        lineitem_rows: settings.tpch_lineitems,
        seed: settings.seed,
    };
    let (tpch_db, tpch_rels) = tpch::generate(&cfg);
    let imdb_cfg = provabs_datagen::imdb::ImdbConfig {
        num_people: settings.imdb_people,
        num_movies: settings.imdb_movies,
        cast_per_movie: 5,
        seed: settings.seed,
    };
    let (imdb_db, imdb_rels) = provabs_datagen::imdb::generate(&imdb_cfg);
    let all_queries = tpch::tpch_queries(tpch_db.schema())
        .into_iter()
        .map(|w| (w, true))
        .chain(
            provabs_datagen::imdb::imdb_queries(imdb_db.schema())
                .into_iter()
                .map(|w| (w, false)),
        );
    for (w, is_tpch) in all_queries {
        if !names.contains(&w.name.as_str()) {
            continue;
        }
        for variant in join_variants(&w.query, 4) {
            let joins = variant.num_joins();
            let scenario = if is_tpch {
                let mut db = tpch_db.clone();
                let Some(example) = kexample_for(&db, &variant, settings.rows) else {
                    continue;
                };
                let tree = tpch::tpch_tree_covering(
                    &mut db,
                    &tpch_rels,
                    &example,
                    settings.tree_leaves,
                    settings.tree_height,
                    settings.seed,
                    settings.shuffle_tree,
                );
                Scenario {
                    name: w.name.clone(),
                    query: variant,
                    db,
                    tree,
                    example,
                }
            } else {
                let mut db = imdb_db.clone();
                let Some(example) = kexample_for(&db, &variant, settings.rows) else {
                    continue;
                };
                let tree = provabs_datagen::imdb::imdb_tree(&mut db, &imdb_rels);
                Scenario {
                    name: w.name.clone(),
                    query: variant,
                    db,
                    tree,
                    example,
                }
            };
            out.push(run_search(
                &scenario,
                settings.threshold,
                caps,
                &joins.to_string(),
                |_| {},
            ));
        }
    }
    out
}

/// Figure 17: runtime for a varying number of K-example rows.
pub fn fig17(
    settings: &ScenarioSettings,
    caps: &HarnessCaps,
    row_counts: &[usize],
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &rows in row_counts {
        let mut st = settings.clone();
        st.rows = rows;
        for s in plotted(default_scenarios(&st)) {
            out.push(run_search(
                &s,
                st.threshold,
                caps,
                &rows.to_string(),
                |_| {},
            ));
        }
    }
    out
}

/// Figure 18: loss of information of our optimum vs the compression-based
/// baseline of \[24\], for varying thresholds.
pub fn fig18(
    settings: &ScenarioSettings,
    caps: &HarnessCaps,
    thresholds: &[usize],
) -> Vec<Measurement> {
    let scenarios = plotted(default_scenarios(settings));
    let mut out = Vec::new();
    for s in &scenarios {
        for &k in thresholds {
            let ours = run_search(s, k, caps, &k.to_string(), |_| {});
            let mut ours_named = ours.clone();
            ours_named.query = format!("{}(ours)", s.name);
            out.push(ours_named);
            // Compression baseline.
            let bound = match Bound::new(&s.db, &s.tree, &s.example) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let cfg = PrivacyConfig {
                threshold: k,
                max_alignments: caps.max_alignments,
                max_concretizations: caps.max_concretizations,
                ..Default::default()
            };
            let start = std::time::Instant::now();
            let comp = compression_baseline_with_budget(
                &bound,
                &cfg,
                &LoiDistribution::Uniform,
                caps.time_budget_ms,
            );
            let rt = start.elapsed().as_secs_f64() * 1e3;
            let (found, privacy, loi, edges) = match &comp.best {
                Some(b) => (true, b.privacy, b.loi, b.edges_used),
                None => (false, 0, f64::NAN, 0),
            };
            out.push(Measurement {
                query: format!("{}(comp)", s.name),
                param: k.to_string(),
                runtime_ms: rt,
                found,
                privacy,
                loi,
                edges,
                abstractions: comp.targets_tried,
                privacy_evals: comp.targets_tried,
                truncated: comp.privacy_stats.truncated,
                note: String::new(),
            });
        }
    }
    out
}

/// A Figure 19 ablation variant: display name plus config patch.
type AblationVariant = (&'static str, fn(&mut provabs_core::search::SearchConfig));

/// Figure 19: effect of each §4.1 component, standalone, against the
/// brute-force baseline. Reported as the runtime with the component enabled
/// (the brute-force rows carry param `brute`); speedups are the ratios.
pub fn fig19(settings: &ScenarioSettings, caps: &HarnessCaps) -> Vec<Measurement> {
    // Tiny scenario so the brute force terminates.
    let mut st = settings.clone();
    st.tree_leaves = st.tree_leaves.min(120);
    st.threshold = 2;
    let scenarios: Vec<Scenario> = tpch_scenarios(&st)
        .into_iter()
        .filter(|s| matches!(s.name.as_str(), "TPCH-Q3" | "TPCH-Q4" | "TPCH-Q10"))
        .collect();
    let variants: [AblationVariant; 6] = [
        ("brute", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = false;
            c.early_termination = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("sorting", |c| {
            c.sort_abstractions = true;
            c.prioritize_loi = false;
            c.early_termination = true;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("loi-first", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = true;
            c.early_termination = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("row-by-row", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = false;
            c.early_termination = false;
            c.privacy.row_by_row = true;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("connectivity", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = false;
            c.early_termination = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = true;
            c.privacy.caching = false;
        }),
        ("caching", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = false;
            c.early_termination = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = true;
        }),
    ];
    let mut out = Vec::new();
    for s in &scenarios {
        for (name, tweak) in &variants {
            let mut m = run_search(s, st.threshold, caps, name, *tweak);
            m.note = format!("component={name}");
            out.push(m);
        }
    }
    out
}

/// §5.2 "Loss of information distribution": runtime under the uniform vs a
/// random leaf-weight distribution (expected: insensitive runtimes; the
/// optimum may shift).
pub fn loi_distribution(settings: &ScenarioSettings, caps: &HarnessCaps) -> Vec<Measurement> {
    let scenarios = plotted(default_scenarios(settings));
    let mut out = Vec::new();
    for s in &scenarios {
        out.push(run_search(s, settings.threshold, caps, "uniform", |_| {}));
        let weights = LeafWeights::random(s.tree.leaves(), settings.seed);
        let mut m = run_search(s, settings.threshold, caps, "random", move |c| {
            c.distribution = LoiDistribution::Weighted(weights);
        });
        m.note = "weighted".into();
        out.push(m);
    }
    out
}

/// Table 3 counts: consistent / connected / CIM queries of the running
/// example's `Exabs1`, for both query sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Counts {
    /// Frontier view (most-specific query per alignment — the candidate set
    /// the paper's algorithm materializes): consistent / connected / CIM.
    pub frontier: (usize, usize, usize),
    /// Exhaustive view (every consistent query up to isomorphism,
    /// generalizations included): consistent / connected / CIM.
    pub closure: (usize, usize, usize),
}

/// Table 3: the consistent / connected / CIM query counts of the running
/// example's abstracted K-example `Exabs1`. The paper reports 14 consistent,
/// 3 connected, 2 CIM; the definitional counts (connected, CIM) are exact in
/// the frontier view, while "14 consistent" sits between our frontier (9)
/// and the exhaustive closure (89) — see EXPERIMENTS.md.
pub fn table3() -> Table3Counts {
    let frontier = table3_with(false);
    let closure = table3_with(true);
    Table3Counts { frontier, closure }
}

fn table3_with(exhaustive: bool) -> (usize, usize, usize) {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    // Build Exabs1: h1 and h2 lifted one level.
    let mut abs = provabs_core::Abstraction::identity(&bound);
    for name in ["h1", "h2"] {
        let id = fx.db.annotations().get(name).unwrap();
        for r in 0..bound.num_rows() {
            for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                if a == id {
                    abs.lifts[r][i] = 1;
                }
            }
        }
    }
    let rows = abs.apply(&bound).rows;
    // Enumerate all consistent queries across all concretizations.
    let mut all: Vec<provabs_relational::Cq> = Vec::new();
    let mut keys = std::collections::HashSet::new();
    provabs_core::concretize::for_each_concretization(&bound, &rows, usize::MAX, |conc| {
        let concrete: Vec<provabs_relational::ConcreteRow> = conc
            .iter()
            .enumerate()
            .filter_map(|(r, occs)| {
                provabs_relational::ConcreteRow::resolve(&fx.db, &rows[r].output, occs)
            })
            .collect();
        if concrete.len() == conc.len() {
            let qs = if exhaustive {
                enumerate_consistent_queries(&concrete, &RevOptions::default(), 100_000)
            } else {
                provabs_reveng::find_consistent_queries(&concrete, &RevOptions::default())
            };
            for q in qs {
                if keys.insert(provabs_reveng::canonical_key(&q)) {
                    all.push(q);
                }
            }
        }
        true
    });
    let connected: Vec<_> = all.iter().filter(|q| q.is_connected()).cloned().collect();
    let cim = cim_queries(&all, ContainmentMode::Bijective);
    (all.len(), connected.len(), cim.len())
}
