//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! One runner per figure/table; the `figures` binary drives them and prints
//! the series each figure plots (plus CSV files under `results/`). Absolute
//! numbers differ from the paper (Rust vs Java 13, synthetic vs raw
//! datasets, laptop-scale sizes — see DESIGN.md §4); the reproduced claims
//! are the *shapes*: who wins, what grows, where the crossovers sit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod durability;
pub mod figures;
pub mod intern;
pub mod planner;
pub mod report;
pub mod scenario;
pub mod sched;
pub mod service;
pub mod storage;
pub mod updates;
pub mod user_study;
pub mod vectorized;

pub use adaptive::{run_adaptive_comparison, AdaptiveSettings};
pub use durability::{run_durability_comparison, DurabilitySettings};
pub use intern::{run_intern_comparison, InternSettings};
pub use planner::{run_planner_comparison, PlannerSettings};
pub use report::{
    parse_adaptive_json, parse_bench_json, parse_durability_json, parse_intern_json,
    parse_planner_json, parse_sched_json, parse_service_json, parse_storage_json,
    parse_vectorized_json, print_table, render_adaptive_json, render_bench_json,
    render_durability_json, render_intern_json, render_planner_json, render_sched_json,
    render_service_json, render_storage_json, render_vectorized_json, write_adaptive_json,
    write_bench_json, write_csv, write_durability_json, write_intern_json, write_planner_json,
    write_sched_json, write_service_json, write_storage_json, write_vectorized_json,
    AdaptiveMetric, BenchMetric, DurabilityMetric, InternMetric, Measurement, PlannerMetric,
    SchedMetric, ServiceMetric, StorageMetric, VectorizedMetric,
};
pub use scenario::{
    imdb_scenarios, run_search, tpch_scenarios, HarnessCaps, Scenario, ScenarioSettings,
};
pub use sched::{run_sched_sweeps, SchedSettings};
pub use service::{run_service_comparison, ServiceSettings};
pub use storage::{run_storage_comparison, StorageSettings};
pub use updates::{run_update_comparison, UpdateSettings};
pub use vectorized::{run_vectorized_comparison, VectorizedSettings};
