//! Columnar-storage microbenchmark: the dictionary-encoded id-probing
//! engine versus the naive owned-value oracle, plus the id-level churn
//! path.
//!
//! Two axes mirror the `BENCH_4.json` perf-gate scenarios:
//! * `eval` — one full evaluation of a TPC-H workload query through the
//!   columnar engine and through the decoded owned-value oracle;
//! * `churn` — delta maintenance of the same query over a deterministic
//!   update stream (inserts land as interned ids, deletions swap-remove
//!   columns and rename postings).
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::storage` / `bench_gate --bench storage`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{ChurnConfig, ChurnGenerator};
use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::{apply_delta_with_queries, eval_cq};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_storage");
    group.sample_size(10);

    let (db_proto, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 600,
        seed: 42,
    });
    let query = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q3")
        .expect("TPCH-Q3 exists")
        .query;
    let mut db = db_proto.clone();
    db.build_indexes();

    group.bench_function(BenchmarkId::new("eval/TPCH-Q3", "columnar"), |b| {
        b.iter(|| eval_cq(&db, &query));
    });
    group.bench_function(BenchmarkId::new("eval/TPCH-Q3", "owned-oracle"), |b| {
        b.iter(|| oracle_eval_cq(&db, &query));
    });

    group.bench_function(BenchmarkId::new("churn/TPCH-Q3", "columnar"), |b| {
        b.iter(|| {
            let mut db = db_proto.clone();
            db.build_indexes();
            let mut cached = eval_cq(&db, &query);
            let mut gen = ChurnGenerator::new(&ChurnConfig {
                batch_size: 8,
                insert_ratio: 0.5,
                seed: 7,
            });
            for _ in 0..3 {
                let delta = gen.next_batch(&db);
                let out = apply_delta_with_queries(&mut db, &delta, std::slice::from_ref(&query));
                assert!(out.deltas[0].merge_into(&mut cached));
            }
            cached
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
