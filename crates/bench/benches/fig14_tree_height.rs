//! Criterion companion to Figure 14: search runtime across tree heights
//! (per-query optimum, non-monotone).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};

fn bench(c: &mut Criterion) {
    let caps = HarnessCaps {
        time_budget_ms: Some(2_000),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig14_tree_height");
    group.sample_size(10);
    for height in [3u32, 5, 7] {
        let settings = ScenarioSettings {
            tree_height: height,
            tree_leaves: 300,
            tpch_lineitems: 800,
            ..Default::default()
        };
        let scenarios = tpch_scenarios(&settings);
        let Some(s) = scenarios.iter().find(|s| s.name == "TPCH-Q10") else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("TPCH-Q10", height), &height, |b, _| {
            b.iter(|| run_search(s, 5, &caps, "bench", |_| {}));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
