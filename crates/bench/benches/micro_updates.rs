//! Update-engine microbenchmark: delta maintenance vs full re-evaluation
//! under churn, per insert/delete mix.
//!
//! The update stream is recorded once up front, so `maintain` (delta path)
//! and `reeval` (from-scratch path) replay the *same* batches; each
//! iteration starts from a fresh clone of the base database plus the
//! initial evaluation, a cost common to both sides. The counter-based
//! comparison (what the CI gate diffs) lives in `bench_gate` /
//! `provabs_bench::updates`; this bench measures wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{ChurnConfig, ChurnGenerator};
use provabs_relational::{apply_delta_with_queries, eval_cq, Delta};

fn bench(c: &mut Criterion) {
    let (mut db0, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 800,
        seed: 42,
    });
    db0.build_indexes();
    let query = tpch::tpch_queries(db0.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q4")
        .expect("TPCH-Q4 exists")
        .query;
    let mut group = c.benchmark_group("micro_updates");
    group.sample_size(10);
    for ratio in [100u32, 50, 0] {
        // Record the stream against an evolving scratch copy so every
        // benchmark variant replays identical batches.
        let mut sim = db0.clone();
        let mut gen = ChurnGenerator::new(&ChurnConfig {
            batch_size: 12,
            insert_ratio: f64::from(ratio) / 100.0,
            seed: 42 ^ u64::from(ratio),
        });
        let deltas: Vec<Delta> = (0..5)
            .map(|_| {
                let d = gen.next_batch(&sim);
                sim.apply_delta(&d);
                d
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("maintain/TPCH-Q4", ratio),
            &deltas,
            |b, deltas| {
                b.iter(|| {
                    let mut db = db0.clone();
                    let mut cached = eval_cq(&db, &query);
                    for d in deltas {
                        let out =
                            apply_delta_with_queries(&mut db, d, std::slice::from_ref(&query));
                        assert!(out.deltas[0].merge_into(&mut cached));
                    }
                    cached
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reeval/TPCH-Q4", ratio),
            &deltas,
            |b, deltas| {
                b.iter(|| {
                    let mut db = db0.clone();
                    let mut cached = eval_cq(&db, &query);
                    for d in deltas {
                        db.apply_delta(d);
                        cached = eval_cq(&db, &query);
                    }
                    cached
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
