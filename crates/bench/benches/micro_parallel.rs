//! Parallel-search microbenchmark: Algorithm 2 wall time vs. worker count
//! on a Figure 16-scale TPC-H instance (see `run_search` thread axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};

fn bench(c: &mut Criterion) {
    let settings = ScenarioSettings {
        tree_leaves: 300,
        tpch_lineitems: 800,
        ..Default::default()
    };
    let caps = HarnessCaps {
        time_budget_ms: Some(4_000),
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&settings);
    let Some(s) = scenarios.iter().find(|s| s.name == "TPCH-Q3") else {
        return;
    };
    let mut group = c.benchmark_group("micro_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("TPCH-Q3", threads), &threads, |b, &t| {
            b.iter(|| {
                run_search(s, 5, &caps, "bench", |cfg| {
                    cfg.parallelism = Some(t);
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
