//! Interned-arena microbenchmark: hash-consed provenance with memoized
//! abstraction application versus the owned-polynomial path.
//!
//! Two axes mirror the `BENCH_3.json` perf-gate scenarios:
//! * `search` — Algorithm 2 (cold + repeat, the warm-restart pattern) with
//!   `memoize_abstractions` on/off on a TPC-H scenario;
//! * `eval` — repeated evaluation of a TPC-H workload query with a
//!   persistent [`ProvStore`] versus a fresh arena per round (the owned
//!   boundary).
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::intern` / `bench_gate --bench intern`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::ScenarioSettings;
use provabs_core::privacy::{PrivacyCache, PrivacyConfig};
use provabs_core::search::{find_optimal_abstraction_with_cache, SearchConfig};
use provabs_core::Bound;
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_relational::{eval_cq_counted_interned, EvalLimits};
use provabs_semiring::ProvStore;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_intern");
    group.sample_size(10);

    // --- search axis -----------------------------------------------------
    let scenarios = provabs_bench::tpch_scenarios(&ScenarioSettings {
        threshold: 3,
        tree_leaves: 48,
        tree_height: 4,
        rows: 2,
        tpch_lineitems: 600,
        seed: 42,
        ..Default::default()
    });
    if let Some(scenario) = scenarios.iter().find(|s| s.name == "TPCH-Q3") {
        for memoize in [false, true] {
            let label = if memoize { "memoized" } else { "owned" };
            let cfg = SearchConfig {
                privacy: PrivacyConfig {
                    threshold: 3,
                    max_concretizations: 3_000,
                    max_alignments: 3_000,
                    ..Default::default()
                },
                max_candidates: 4_000,
                time_budget_ms: None,
                parallelism: Some(1),
                memoize_abstractions: memoize,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new("search/TPCH-Q3", label), &cfg, |b, cfg| {
                b.iter(|| {
                    // Fresh bound per iteration: the abstraction memo lives
                    // on the Bound, so this really measures a cold search
                    // plus a warm repeat, not a pre-warmed steady state.
                    let bound = Bound::new(&scenario.db, &scenario.tree, &scenario.example)
                        .expect("bindable");
                    let cache = PrivacyCache::new();
                    let first = find_optimal_abstraction_with_cache(&bound, cfg, &cache);
                    let second = find_optimal_abstraction_with_cache(&bound, cfg, &cache);
                    (first.stats.rows_abstracted, second.stats.rows_abstracted)
                });
            });
        }
    }

    // --- eval axis -------------------------------------------------------
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 800,
        seed: 42,
    });
    db.build_indexes();
    let query = tpch::tpch_queries(db.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q4")
        .expect("TPCH-Q4 exists")
        .query;
    group.bench_function(BenchmarkId::new("eval/TPCH-Q4", "owned"), |b| {
        b.iter(|| {
            // Fresh arena per round — what the owned boundary does.
            let mut last = None;
            for _ in 0..3 {
                let mut store = ProvStore::new();
                let (out, _) =
                    eval_cq_counted_interned(&db, &query, EvalLimits::default(), &mut store);
                last = Some(out.to_krelation(&store));
            }
            last
        });
    });
    group.bench_function(BenchmarkId::new("eval/TPCH-Q4", "interned"), |b| {
        b.iter(|| {
            // One persistent arena: later rounds are memo hits.
            let mut store = ProvStore::new();
            let mut last = None;
            for _ in 0..3 {
                let (out, _) =
                    eval_cq_counted_interned(&db, &query, EvalLimits::default(), &mut store);
                last = Some(out.to_krelation(&store));
            }
            last
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
