//! Microbenchmarks of the substrate hot paths: polynomial arithmetic,
//! provenance-tracking evaluation, canonicalization, containment, privacy.

use criterion::{criterion_group, criterion_main, Criterion};
use provabs_core::fixtures::running_example;
use provabs_core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use provabs_core::{Abstraction, Bound};
use provabs_relational::{eval_cq, parse_cq};
use provabs_reveng::{
    canonical_key, contained_in, find_consistent_queries, ContainmentMode, RevOptions,
};
use provabs_semiring::{AnnotId, Monomial, Polynomial};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group.sample_size(30);

    // Polynomial multiplication: (x0 + ... + x9)^2 * (x10 + ... + x19).
    let p1 = Polynomial::from_terms((0..10).map(|i| (Monomial::from_annots([AnnotId(i)]), 1)));
    let p2 = Polynomial::from_terms((10..20).map(|i| (Monomial::from_annots([AnnotId(i)]), 1)));
    group.bench_function("polynomial_mul", |b| {
        b.iter(|| p1.mul(&p1).mul(&p2));
    });

    let fx = running_example();
    group.bench_function("eval_cq_running_example", |b| {
        b.iter(|| eval_cq(&fx.db, &fx.qreal));
    });

    group.bench_function("canonical_key", |b| {
        b.iter(|| canonical_key(&fx.qreal));
    });

    group.bench_function("containment_bijective", |b| {
        b.iter(|| contained_in(&fx.qreal, &fx.qgeneral, ContainmentMode::Bijective));
    });

    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let rows = fx.exreal.resolve(&fx.db).unwrap();
    group.bench_function("find_consistent_queries", |b| {
        b.iter(|| find_consistent_queries(&rows, &RevOptions::default()));
    });

    // Privacy of Exabs1 (cold cache each iteration).
    let mut abs = Abstraction::identity(&bound);
    for name in ["h1", "h2"] {
        let id = fx.db.annotations().get(name).unwrap();
        for r in 0..bound.num_rows() {
            for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                if a == id {
                    abs.lifts[r][i] = 1;
                }
            }
        }
    }
    let abs_rows = abs.apply(&bound).rows;
    let cfg = PrivacyConfig {
        threshold: 2,
        ..Default::default()
    };
    group.bench_function("privacy_exabs1_cold", |b| {
        b.iter(|| {
            let cache = PrivacyCache::new();
            compute_privacy(&bound, &abs_rows, &cfg, &cache)
        });
    });

    // Parsing.
    group.bench_function("parse_cq", |b| {
        b.iter(|| {
            parse_cq(
                "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1), Interests(id, 'Music', s2)",
                fx.db.schema(),
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
