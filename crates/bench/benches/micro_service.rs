//! Service microbenchmark: the hot paths of the `provabsd` session layer.
//!
//! Three axes mirror the `BENCH_8.json` perf-gate scenarios:
//! * `session/pin` — pinning a snapshot session (an `Arc` clone plus an
//!   epoch read, the per-request admission prologue);
//! * `query/pinned` — evaluating the first TPC-H template through a
//!   pinned session, admission and budget accounting included;
//! * `reject/overload` — the fail-fast path: the queue is fully held, so
//!   every query is rejected before any evaluation work.
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::service` / `bench_gate --bench service`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::tpch::{self, tpch_queries, TpchConfig};
use provabs_relational::storage::{FaultyVfs, SharedVfs};
use provabsd::{Provabsd, ServiceConfig, ServiceError};
use std::sync::{Arc, Mutex};

fn service() -> Provabsd {
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 200,
        seed: 42,
    });
    db.build_indexes();
    let vfs: SharedVfs = Arc::new(Mutex::new(FaultyVfs::new()));
    Provabsd::create(vfs, "bench-svc", db, ServiceConfig::default()).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_service");
    group.sample_size(10);

    let svc = service();
    let queries = tpch_queries(svc.session().db().database().schema());

    group.bench_function(BenchmarkId::new("session", "pin"), |b| {
        b.iter(|| svc.session());
    });

    let session = svc.session();
    group.bench_function(BenchmarkId::new("query", "pinned"), |b| {
        b.iter(|| session.query(&queries[0].query).unwrap());
    });

    let held: Vec<_> = (0..svc.config().queue_capacity)
        .map(|_| svc.acquire(1).unwrap())
        .collect();
    group.bench_function(BenchmarkId::new("reject", "overload"), |b| {
        b.iter(|| {
            let err = session.query(&queries[0].query).unwrap_err();
            assert!(matches!(err, ServiceError::Overloaded { .. }));
        });
    });
    drop(held);

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
