//! Adaptive-execution microbenchmark: mid-join re-planning with sideways
//! statistics versus the static cost-based plan, plus the epoch-keyed
//! plan cache's hit path versus cold planning.
//!
//! Two axes mirror the `BENCH_9.json` perf-gate scenarios:
//! * `eval` — one full evaluation of the correlated-skew query with and
//!   without the adaptive trigger armed (the planted statistics make the
//!   static plan explode, so the re-plan pays for itself in wall time,
//!   not just in the counters the gate diffs);
//! * `cache` — repeated evaluation of the same query through a
//!   [`PlanCache`]-bound evaluator versus planning cold every time.
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::adaptive` / `bench_gate --bench adaptive`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::{correlated_skew, CorrelatedSkewConfig};
use provabs_relational::{Evaluator, Execution, PlanCache, PlanMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_adaptive");
    group.sample_size(10);

    let (db, w) = correlated_skew(&CorrelatedSkewConfig::default());

    group.bench_function(BenchmarkId::new("eval/corr-skew", "static"), |b| {
        let eval = Evaluator::new(&db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Scalar);
        b.iter(|| eval.eval_cq(&w.query));
    });
    group.bench_function(BenchmarkId::new("eval/corr-skew", "adaptive"), |b| {
        let eval = Evaluator::new(&db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Scalar)
            .adaptive(2.0);
        b.iter(|| eval.eval_cq(&w.query));
    });
    group.bench_function(BenchmarkId::new("cache/corr-skew", "cold-plan"), |b| {
        let eval = Evaluator::new(&db).execution(Execution::Scalar);
        b.iter(|| eval.eval_cq(&w.query));
    });
    group.bench_function(BenchmarkId::new("cache/corr-skew", "cached-plan"), |b| {
        let cache = PlanCache::new();
        let eval = Evaluator::new(&db)
            .execution(Execution::Scalar)
            .plan_cache(&cache, 0);
        b.iter(|| eval.eval_cq(&w.query));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
