//! Durability microbenchmark: reopening a persisted database from its
//! snapshot (and WAL tail) versus rebuilding the same logical state from
//! scratch.
//!
//! Three axes mirror the `BENCH_6.json` perf-gate scenarios:
//! * `reopen/checkpointed` — [`DurableDatabase::open`] after the churn
//!   stream was checkpointed into the snapshot (pure page decode);
//! * `reopen/wal-tail` — the same open with every batch still in the WAL
//!   (snapshot decode + logical replay);
//! * `rebuild/cold` — re-ingesting the final state tuple by tuple into a
//!   fresh [`Database`] and rebuilding the indexes, the path a process
//!   without a snapshot pays.
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::durability` / `bench_gate --bench durability`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{recovery_stream, ChurnConfig};
use provabs_relational::storage::MemVfs;
use provabs_relational::storage::{shared, DurableDatabase, DurableOptions, SharedVfs};
use provabs_relational::Database;

const BASE: &str = "bench";

fn opts() -> DurableOptions {
    DurableOptions {
        cache_pages: 64,
        checkpoint_every: 0,
    }
}

/// Persists the TPC-H seed plus a 4-batch insert-heavy churn stream,
/// optionally checkpointing at the end. Returns the VFS holding the
/// durable files and the final in-memory state.
fn persisted(checkpointed: bool) -> (SharedVfs, Database) {
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 400,
        seed: 42,
    });
    db.build_indexes();
    let (deltas, oracle) = recovery_stream(&db, &ChurnConfig::insert_heavy(42), 4);
    let vfs: SharedVfs = shared(MemVfs::new());
    let mut ddb = DurableDatabase::create(vfs.clone(), BASE, db, opts()).unwrap();
    for delta in &deltas {
        ddb.apply_delta(delta).unwrap();
    }
    if checkpointed {
        ddb.checkpoint().unwrap();
    }
    (vfs, oracle)
}

/// The cold path: same schema, same tuples, same labels, indexes rebuilt.
fn rebuild(db: &Database) -> Database {
    let mut fresh = Database::new();
    for rel in db.schema().relation_ids() {
        let rs = db.schema().relation(rel);
        let columns: Vec<&str> = rs.columns.iter().map(String::as_str).collect();
        let fresh_rel = fresh.add_relation(&rs.name, &columns);
        for (row, &annot) in db.tuple_annots(rel).to_vec().iter().enumerate() {
            let label = db.annotations().name(annot).to_owned();
            fresh.insert(fresh_rel, &label, db.decode_row(rel, row));
        }
    }
    fresh.build_indexes();
    fresh
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_durability");
    group.sample_size(10);

    let (vfs_ckpt, oracle) = persisted(true);
    let (vfs_tail, _) = persisted(false);

    group.bench_function(BenchmarkId::new("reopen", "checkpointed"), |b| {
        b.iter(|| DurableDatabase::open(vfs_ckpt.clone(), BASE, opts()).unwrap());
    });
    group.bench_function(BenchmarkId::new("reopen", "wal-tail"), |b| {
        b.iter(|| DurableDatabase::open(vfs_tail.clone(), BASE, opts()).unwrap());
    });
    group.bench_function(BenchmarkId::new("rebuild", "cold"), |b| {
        b.iter(|| rebuild(&oracle));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
