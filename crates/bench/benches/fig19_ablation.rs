//! Criterion companion to Figure 19: each §4.1 component standalone against
//! the brute-force baseline on a tiny scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};
use provabs_core::search::SearchConfig;

fn bench(c: &mut Criterion) {
    let settings = ScenarioSettings {
        tree_leaves: 60,
        tree_height: 3,
        tpch_lineitems: 400,
        ..Default::default()
    };
    let caps = HarnessCaps {
        max_candidates: 5_000,
        time_budget_ms: Some(3_000),
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&settings);
    let s = scenarios
        .iter()
        .find(|s| s.name == "TPCH-Q4")
        .expect("scenario");
    type Variant = (&'static str, fn(&mut SearchConfig));
    let variants: [Variant; 4] = [
        ("brute", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = false;
            c.early_termination = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("sorting", |c| {
            c.sort_abstractions = true;
            c.prioritize_loi = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("loi_first", |c| {
            c.sort_abstractions = false;
            c.prioritize_loi = true;
            c.early_termination = false;
            c.privacy.row_by_row = false;
            c.privacy.connectivity_filter = false;
            c.privacy.caching = false;
        }),
        ("all_components", |_| {}),
    ];
    let mut group = c.benchmark_group("fig19_ablation");
    group.sample_size(10);
    for (name, tweak) in variants {
        group.bench_function(name, |b| {
            b.iter(|| run_search(s, 2, &caps, name, tweak));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
