//! Vectorized-execution microbenchmark: the block-at-a-time pipeline
//! versus the scalar binding-at-a-time engine, same plan, same database.
//!
//! One axis mirrors the `BENCH_7.json` perf-gate scenarios: `eval` — a
//! full evaluation of a TPC-H or IMDB workload query, run once through
//! [`Execution::Block`] and once through [`Execution::Scalar`]. A block
//! size sweep on TPC-H Q3 shows where the blocking overhead amortizes.
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::vectorized` / `bench_gate --bench vectorized`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::imdb::{self, ImdbConfig};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_relational::{Evaluator, Execution, PlanMode, DEFAULT_BLOCK_SIZE};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_vectorized");
    group.sample_size(10);

    let (tpch_proto, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 600,
        seed: 42,
    });
    let q3 = tpch::tpch_queries(tpch_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q3")
        .expect("TPCH-Q3 exists")
        .query;
    let mut tpch_db = tpch_proto;
    tpch_db.build_indexes();

    group.bench_function(BenchmarkId::new("eval/TPCH-Q3", "block"), |b| {
        let eval = Evaluator::new(&tpch_db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Block {
                block_size: DEFAULT_BLOCK_SIZE,
            });
        b.iter(|| eval.eval_cq(&q3));
    });
    group.bench_function(BenchmarkId::new("eval/TPCH-Q3", "scalar"), |b| {
        let eval = Evaluator::new(&tpch_db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Scalar);
        b.iter(|| eval.eval_cq(&q3));
    });
    for block_size in [64usize, 256, 1024] {
        group.bench_function(
            BenchmarkId::new("eval/TPCH-Q3/block-size", block_size),
            |b| {
                let eval = Evaluator::new(&tpch_db)
                    .plan(PlanMode::CostBased)
                    .execution(Execution::Block { block_size });
                b.iter(|| eval.eval_cq(&q3));
            },
        );
    }

    let (imdb_proto, _) = imdb::generate(&ImdbConfig {
        num_people: 150,
        num_movies: 150,
        cast_per_movie: 5,
        seed: 42,
    });
    let q2 = imdb::imdb_queries(imdb_proto.schema())
        .into_iter()
        .find(|w| w.name == "IMDB-Q2")
        .expect("IMDB-Q2 exists")
        .query;
    let mut imdb_db = imdb_proto;
    imdb_db.build_indexes();

    group.bench_function(BenchmarkId::new("eval/IMDB-Q2", "block"), |b| {
        let eval = Evaluator::new(&imdb_db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Block {
                block_size: DEFAULT_BLOCK_SIZE,
            });
        b.iter(|| eval.eval_cq(&q2));
    });
    group.bench_function(BenchmarkId::new("eval/IMDB-Q2", "scalar"), |b| {
        let eval = Evaluator::new(&imdb_db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Scalar);
        b.iter(|| eval.eval_cq(&q2));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
