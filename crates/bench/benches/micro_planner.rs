//! Planner microbenchmark: cost-based planning versus written-order
//! execution on adversarially-ordered workloads.
//!
//! Two axes mirror the `BENCH_5.json` perf-gate scenarios:
//! * `eval` — one full evaluation of an adversarially-ordered TPC-H query
//!   under the cost-based planner and under literal written order;
//! * `plan` — the planning step alone (statistics collection + greedy
//!   ordering), to show it is microseconds against the milliseconds it
//!   saves.
//!
//! Wall time only; the counter-based comparison the CI gate diffs lives in
//! `provabs_bench::planner` / `bench_gate --bench planner`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_datagen::adversarial_order;
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_relational::{plan_cq, Evaluator, Execution, PlanMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_planner");
    group.sample_size(10);

    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 600,
        seed: 42,
    });
    db.build_indexes();
    let q3 = tpch::tpch_queries(db.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q3")
        .expect("TPCH-Q3 exists")
        .query;
    let adv = adversarial_order(&db, &q3);

    group.bench_function(BenchmarkId::new("eval/TPCH-Q3-adv", "cost-based"), |b| {
        let eval = Evaluator::new(&db)
            .plan(PlanMode::CostBased)
            .execution(Execution::Scalar);
        b.iter(|| eval.eval_cq(&adv));
    });
    group.bench_function(BenchmarkId::new("eval/TPCH-Q3-adv", "written-order"), |b| {
        let eval = Evaluator::new(&db)
            .plan(PlanMode::WrittenOrder)
            .execution(Execution::Scalar);
        b.iter(|| eval.eval_cq(&adv));
    });
    group.bench_function(BenchmarkId::new("plan/TPCH-Q3-adv", "cost-based"), |b| {
        b.iter(|| plan_cq(&db, &adv, PlanMode::CostBased, None));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
