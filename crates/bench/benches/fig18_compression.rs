//! Criterion companion to Figure 18: Algorithm 2 vs the compression-driven
//! baseline of [24] on the same scenario and threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};
use provabs_core::compression::compression_baseline;
use provabs_core::loi::LoiDistribution;
use provabs_core::privacy::PrivacyConfig;
use provabs_core::Bound;

fn bench(c: &mut Criterion) {
    let settings = ScenarioSettings {
        tree_leaves: 300,
        tpch_lineitems: 800,
        ..Default::default()
    };
    let caps = HarnessCaps {
        time_budget_ms: Some(2_000),
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&settings);
    let s = scenarios
        .iter()
        .find(|s| s.name == "TPCH-Q3")
        .expect("scenario");
    let mut group = c.benchmark_group("fig18_compression");
    group.sample_size(10);
    group.bench_function("ours_k5", |b| {
        b.iter(|| run_search(s, 5, &caps, "bench", |_| {}));
    });
    group.bench_function("compression_k5", |b| {
        let bound = Bound::new(&s.db, &s.tree, &s.example).unwrap();
        let cfg = PrivacyConfig {
            threshold: 5,
            ..Default::default()
        };
        b.iter(|| compression_baseline(&bound, &cfg, &LoiDistribution::Uniform));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
