//! Schedule-enumeration microbenchmark: wall time of the model-checking
//! sweeps the CI gate replays (`bench_gate --bench sched`,
//! `BENCH_10.json`).
//!
//! Two axes:
//! * `sweep` — one full exhaustive sweep of a healthy protocol scenario
//!   (the publication race and the plan-cache fence);
//! * `passthrough` — the production-mode cost of the shims: a mutex
//!   round-trip and an atomic increment outside any exploration, which is
//!   the overhead every instrumented seam pays when no model checker is
//!   active (one relaxed load + a thread-local probe).
//!
//! Wall time only; the counter-exact comparison the CI gate diffs lives in
//! `provabs_bench::sched` / `bench_gate --bench sched`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_sched_sweeps, SchedSettings};
use provabs_sched::sync::atomic::{AtomicU64, Ordering};
use provabs_sched::sync::Mutex;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_sched");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("sweep", "ci-gate-suite"), |b| {
        b.iter(|| run_sched_sweeps(&SchedSettings::ci_gate()));
    });

    group.bench_function(BenchmarkId::new("passthrough", "mutex"), |b| {
        let m = Mutex::new(0u64);
        b.iter(|| {
            *m.lock().expect("lock") += 1;
        });
    });
    group.bench_function(BenchmarkId::new("passthrough", "atomic"), |b| {
        let a = AtomicU64::new(0);
        b.iter(|| a.fetch_add(1, Ordering::Relaxed));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
