//! Criterion companion to Figure 12: search runtime as the abstraction tree
//! grows (×3 leaf steps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};

fn bench(c: &mut Criterion) {
    let caps = HarnessCaps {
        time_budget_ms: Some(2_000),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig12_tree_size");
    group.sample_size(10);
    for leaves in [100usize, 300, 900] {
        let settings = ScenarioSettings {
            tree_leaves: leaves,
            tpch_lineitems: 1000.max(leaves),
            ..Default::default()
        };
        let scenarios = tpch_scenarios(&settings);
        let Some(s) = scenarios.iter().find(|s| s.name == "TPCH-Q3") else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("TPCH-Q3", leaves), &leaves, |b, _| {
            b.iter(|| run_search(s, 5, &caps, "bench", |_| {}));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
