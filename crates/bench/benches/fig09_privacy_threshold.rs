//! Criterion companion to Figure 9: optimal-abstraction search runtime as
//! the privacy threshold grows (TPC-H, small scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};

fn bench(c: &mut Criterion) {
    let settings = ScenarioSettings {
        tree_leaves: 300,
        tpch_lineitems: 800,
        ..Default::default()
    };
    let caps = HarnessCaps {
        time_budget_ms: Some(2_000),
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&settings);
    let mut group = c.benchmark_group("fig09_privacy_threshold");
    group.sample_size(10);
    for name in ["TPCH-Q3", "TPCH-Q10"] {
        let s = scenarios.iter().find(|s| s.name == name).expect("scenario");
        for k in [2usize, 5, 10] {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| run_search(s, k, &caps, "bench", |_| {}));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
