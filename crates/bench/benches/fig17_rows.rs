//! Criterion companion to Figure 17: search runtime as the K-example grows
//! (the dominant cost factor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};

fn bench(c: &mut Criterion) {
    let caps = HarnessCaps {
        time_budget_ms: Some(3_000),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig17_rows");
    group.sample_size(10);
    for rows in [2usize, 3, 4] {
        let settings = ScenarioSettings {
            rows,
            tree_leaves: 300,
            tpch_lineitems: 800,
            ..Default::default()
        };
        let scenarios = tpch_scenarios(&settings);
        let Some(s) = scenarios.iter().find(|s| s.name == "TPCH-Q4") else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("TPCH-Q4", rows), &rows, |b, _| {
            b.iter(|| run_search(s, 2, &caps, "bench", |_| {}));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
