//! Criterion companion to Figure 16: search runtime as the query's join
//! count grows (TPCH-Q21 prefix variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use provabs_bench::{run_search, HarnessCaps, Scenario, ScenarioSettings};
use provabs_datagen::tpch::{self, TpchConfig};
use provabs_datagen::{join_variants, kexample_for};

fn bench(c: &mut Criterion) {
    let settings = ScenarioSettings {
        tree_leaves: 300,
        tpch_lineitems: 800,
        ..Default::default()
    };
    let caps = HarnessCaps {
        time_budget_ms: Some(2_000),
        ..Default::default()
    };
    let cfg = TpchConfig {
        lineitem_rows: settings.tpch_lineitems,
        seed: settings.seed,
    };
    let (db_proto, rels) = tpch::generate(&cfg);
    let q21 = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q21")
        .expect("Q21");
    let mut group = c.benchmark_group("fig16_joins");
    group.sample_size(10);
    for variant in join_variants(&q21.query, 4) {
        let joins = variant.num_joins();
        let mut db = db_proto.clone();
        let Some(example) = kexample_for(&db, &variant, settings.rows) else {
            continue;
        };
        let tree = tpch::tpch_tree_covering(
            &mut db,
            &rels,
            &example,
            settings.tree_leaves,
            settings.tree_height,
            settings.seed,
            settings.shuffle_tree,
        );
        let scenario = Scenario {
            name: format!("TPCH-Q21/{joins}j"),
            query: variant,
            db,
            tree,
            example,
        };
        group.bench_with_input(BenchmarkId::new("TPCH-Q21", joins), &joins, |b, _| {
            b.iter(|| run_search(&scenario, 5, &caps, "bench", |_| {}));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
