//! Scalar-replay determinism contract: the vectorized rebuild of the
//! evaluation hot path must not disturb a single counter recorded on the
//! scalar engine.
//!
//! The checked-in `BENCH_4.json` / `BENCH_5.json` baselines were emitted
//! before the block pipeline existed. Re-running their gate configurations
//! today — through the `Evaluator`/`Updater` builders pinned to
//! [`Execution::Scalar`] — must reproduce every deterministic counter
//! **exactly**, not merely within the perf gate's 15% tolerance. Any drift
//! means the scalar path stopped being a bit-identical replay of the
//! pre-vectorization engine, which breaks the migration story for every
//! downstream baseline.
//!
//! Wall-clock columns (`*_ms`) are machine noise and are the only fields
//! excluded from the diff.

use provabs_bench::{
    parse_planner_json, parse_storage_json, run_planner_comparison, run_storage_comparison,
    PlannerSettings, StorageSettings,
};

fn read_baseline(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn storage_counters_replay_bench_4_exactly() {
    let (_, baseline) =
        parse_storage_json(&read_baseline("BENCH_4.json")).expect("parse BENCH_4.json");
    assert!(!baseline.is_empty(), "BENCH_4.json is empty");
    let current = run_storage_comparison(&StorageSettings::ci_gate());
    for base in &baseline {
        let cur = current
            .iter()
            .find(|m| m.name == base.name)
            .unwrap_or_else(|| panic!("{}: scenario vanished from the storage sweep", base.name));
        assert_eq!(cur.probes, base.probes, "{}: probes drifted", base.name);
        assert_eq!(
            cur.id_probe_bytes, base.id_probe_bytes,
            "{}: id_probe_bytes drifted",
            base.name
        );
        assert_eq!(
            cur.value_probe_bytes, base.value_probe_bytes,
            "{}: value_probe_bytes drifted",
            base.name
        );
        assert_eq!(
            cur.id_moved_bytes, base.id_moved_bytes,
            "{}: id_moved_bytes drifted",
            base.name
        );
        assert_eq!(
            cur.value_moved_bytes, base.value_moved_bytes,
            "{}: value_moved_bytes drifted",
            base.name
        );
        assert!(
            cur.equal,
            "{}: engine no longer matches the oracle",
            base.name
        );
    }
}

#[test]
fn planner_counters_replay_bench_5_exactly() {
    let (_, baseline) =
        parse_planner_json(&read_baseline("BENCH_5.json")).expect("parse BENCH_5.json");
    assert!(!baseline.is_empty(), "BENCH_5.json is empty");
    let current = run_planner_comparison(&PlannerSettings::ci_gate());
    for base in &baseline {
        let cur = current
            .iter()
            .find(|m| m.name == base.name)
            .unwrap_or_else(|| panic!("{}: scenario vanished from the planner sweep", base.name));
        assert_eq!(
            cur.planned_rows, base.planned_rows,
            "{}: planned_rows drifted",
            base.name
        );
        assert_eq!(
            cur.written_rows, base.written_rows,
            "{}: written_rows drifted",
            base.name
        );
        assert_eq!(
            cur.planned_probes, base.planned_probes,
            "{}: planned_probes drifted",
            base.name
        );
        assert_eq!(
            cur.written_probes, base.written_probes,
            "{}: written_probes drifted",
            base.name
        );
        assert_eq!(
            cur.atoms_reordered, base.atoms_reordered,
            "{}: atoms_reordered drifted",
            base.name
        );
        assert_eq!(
            cur.est_rows, base.est_rows,
            "{}: est_rows drifted",
            base.name
        );
        assert!(
            cur.equal,
            "{}: planned/written/oracle outputs diverged",
            base.name
        );
    }
}
