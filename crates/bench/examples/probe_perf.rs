//! Performance probe: one search per workload query at small settings,
//! printing progress eagerly. Not part of the experiment suite.

use provabs_bench::{imdb_scenarios, run_search, tpch_scenarios, HarnessCaps, ScenarioSettings};

fn main() {
    let settings = ScenarioSettings::default();
    let caps = HarnessCaps::default();
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let mut scenarios = tpch_scenarios(&settings);
    scenarios.extend(imdb_scenarios(&settings));
    for s in &scenarios {
        let m = run_search(s, k, &caps, "probe", |_| {});
        println!(
            "{:<10} k={k} {:>9.1}ms found={} privacy={} loi={:.2} edges={} abstrs={} pevals={} trunc={}",
            s.name, m.runtime_ms, m.found, m.privacy, m.loi, m.edges, m.abstractions, m.privacy_evals, m.truncated
        );
    }
}
