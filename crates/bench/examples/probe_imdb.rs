//! IMDB-only probe with adjustable caps: args = k, max_conc, budget_ms.
use provabs_bench::{imdb_scenarios, run_search, HarnessCaps, ScenarioSettings};

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let mc: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let budget: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let settings = ScenarioSettings::default();
    let caps = HarnessCaps {
        max_candidates: 200_000,
        max_concretizations: mc,
        max_alignments: 10_000,
        time_budget_ms: Some(budget),
        ..Default::default()
    };
    for s in imdb_scenarios(&settings) {
        let m = run_search(&s, k, &caps, "probe", |_| {});
        println!(
            "{:<10} k={k} {:>9.1}ms found={} privacy={} loi={:.2} edges={} abstrs={} pevals={} trunc={}",
            s.name, m.runtime_ms, m.found, m.privacy, m.loi, m.edges, m.abstractions, m.privacy_evals, m.truncated
        );
    }
}
