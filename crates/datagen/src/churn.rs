//! Update-stream (churn) workloads for the incremental update engine.
//!
//! A [`ChurnGenerator`] turns any generated database (TPC-H, IMDB, or
//! custom) into a deterministic stream of [`Delta`] batches with a
//! configurable insert/delete mix — the streaming-update scenario class the
//! batch experiments cannot express. Inserted tuples are synthesized by
//! *column-mixing* two random live donor rows of the target relation, so
//! every column keeps its realistic value domain (keys stay joinable,
//! categories stay categorical) while new join combinations appear.
//! Deletions pick random live tuples, skipping a caller-supplied protected
//! set (e.g. the tuples a K-example's provenance resolves through).

use provabs_relational::{Database, Delta, RelId};
use provabs_semiring::AnnotId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape of an update stream.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Changes per batch (inserts + deletes).
    pub batch_size: usize,
    /// Fraction of changes that are inserts, in `[0, 1]`; the rest are
    /// deletes. `1.0` is append-only growth, `0.5` keeps the database size
    /// roughly stable.
    pub insert_ratio: f64,
    /// RNG seed; equal configs over equal databases yield identical
    /// streams.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            batch_size: 16,
            insert_ratio: 0.5,
            seed: 42,
        }
    }
}

impl ChurnConfig {
    /// A growth-dominated stream (90% inserts) — the WAL-append-heavy
    /// recovery workload of the durability experiments.
    pub fn insert_heavy(seed: u64) -> Self {
        Self {
            batch_size: 16,
            insert_ratio: 0.9,
            seed,
        }
    }

    /// A shrink-dominated stream (90% deletes) — stresses swap-remove
    /// posting maintenance, whose path-dependent row order recovery must
    /// reproduce verbatim.
    pub fn delete_heavy(seed: u64) -> Self {
        Self {
            batch_size: 16,
            insert_ratio: 0.1,
            seed,
        }
    }
}

/// Materializes a full recovery workload: `batches` deltas drawn against an
/// evolving copy of `db` — exactly the transaction stream a durability
/// harness replays through a durable database and crashes at arbitrary
/// prefixes. Returns the delta stream and the in-memory oracle state after
/// all of it (prefix oracles are re-derivable by applying a prefix to a
/// clone of `db`).
pub fn recovery_stream(db: &Database, cfg: &ChurnConfig, batches: usize) -> (Vec<Delta>, Database) {
    let mut generator = ChurnGenerator::new(cfg);
    let mut oracle = db.clone();
    let mut deltas = Vec::with_capacity(batches);
    for _ in 0..batches {
        let delta = generator.next_batch(&oracle);
        oracle.apply_delta(&delta);
        deltas.push(delta);
    }
    (deltas, oracle)
}

/// A deterministic source of update batches against an evolving database.
///
/// The generator holds no reference to the database: each call to
/// [`ChurnGenerator::next_batch`] inspects the database as it is *now*, so
/// the stream stays valid however the caller interleaves batches with other
/// mutations.
#[derive(Debug)]
pub struct ChurnGenerator {
    rng: StdRng,
    insert_ratio: f64,
    batch_size: usize,
    /// Annotations that must never be deleted.
    protected: HashSet<AnnotId>,
    /// Relations eligible for churn (default: all).
    relations: Option<Vec<RelId>>,
    /// Monotone counter making insert labels globally fresh.
    fresh: u64,
}

impl ChurnGenerator {
    /// A generator following `cfg`.
    pub fn new(cfg: &ChurnConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xc4c3_a1b2_95d1_e7f3),
            insert_ratio: cfg.insert_ratio.clamp(0.0, 1.0),
            batch_size: cfg.batch_size.max(1),
            protected: HashSet::new(),
            relations: None,
            fresh: 0,
        }
    }

    /// Protects annotations from deletion (chainable).
    pub fn protect(mut self, annots: impl IntoIterator<Item = AnnotId>) -> Self {
        self.protected.extend(annots);
        self
    }

    /// Restricts churn to `rels` (chainable). By default every relation of
    /// the database may receive inserts and deletes.
    pub fn restrict_to(mut self, rels: impl IntoIterator<Item = RelId>) -> Self {
        self.relations = Some(rels.into_iter().collect());
        self
    }

    /// Draws the next batch against the current state of `db`. Deletes
    /// target live, unprotected tuples; inserts column-mix two live donor
    /// rows of a randomly chosen non-empty relation. Either kind degrades
    /// to the other when the database offers no candidates (e.g. deletes on
    /// an empty database become inserts only if a donor exists; with no
    /// donors at all the change is dropped).
    pub fn next_batch(&mut self, db: &Database) -> Delta {
        let rels: Vec<RelId> = match &self.relations {
            Some(r) => r.clone(),
            None => db.schema().relation_ids().collect(),
        };
        let nonempty: Vec<RelId> = rels
            .iter()
            .copied()
            .filter(|&r| db.relation_len(r) > 0)
            .collect();
        let mut delta = Delta::new();
        // Deletes already queued this batch: a tuple may die only once.
        let mut dying: HashSet<AnnotId> = HashSet::new();
        for _ in 0..self.batch_size {
            let want_insert = self.rng.random_bool(self.insert_ratio);
            if want_insert || nonempty.is_empty() {
                if let Some((rel, tuple)) = self.mix_tuple(db, &nonempty) {
                    let label = format!("chg{}", self.fresh);
                    self.fresh += 1;
                    delta.insert(rel, label, tuple);
                }
            } else if let Some(a) = self.pick_victim(db, &nonempty, &dying) {
                dying.insert(a);
                delta.delete(a);
            }
        }
        delta
    }

    /// Column-mixes two random rows of a random non-empty relation.
    ///
    /// Donor cells are read straight from the columnar storage as interned
    /// ids; only the chosen cells decode into the emitted tuple (the
    /// [`Delta`] boundary is owned). Nothing else of the donor rows is
    /// materialized.
    fn mix_tuple(
        &mut self,
        db: &Database,
        nonempty: &[RelId],
    ) -> Option<(RelId, provabs_relational::Tuple)> {
        if nonempty.is_empty() {
            return None;
        }
        let rel = nonempty[self.rng.random_range(0..nonempty.len())];
        let n = db.relation_len(rel);
        let a = self.rng.random_range(0..n);
        let b = self.rng.random_range(0..n);
        let tuple = (0..db.schema().arity(rel))
            .map(|col| {
                let row = if self.rng.random_bool(0.5) { a } else { b };
                db.value(db.column(rel, col)[row]).clone()
            })
            .collect();
        Some((rel, tuple))
    }

    /// Picks a live, unprotected annotation to delete (bounded retries so a
    /// heavily protected database cannot stall the stream).
    fn pick_victim(
        &mut self,
        db: &Database,
        nonempty: &[RelId],
        dying: &HashSet<AnnotId>,
    ) -> Option<AnnotId> {
        for _ in 0..32 {
            let rel = nonempty[self.rng.random_range(0..nonempty.len())];
            let annots = db.tuple_annots(rel);
            let a = annots[self.rng.random_range(0..annots.len())];
            if !self.protected.contains(&a) && !dying.contains(&a) {
                return Some(a);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchConfig};
    use provabs_relational::{apply_delta_with_queries, eval_cq, parse_cq};

    fn small_db() -> Database {
        generate(&TpchConfig {
            lineitem_rows: 200,
            seed: 5,
        })
        .0
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = ChurnConfig {
            batch_size: 8,
            insert_ratio: 0.5,
            seed: 9,
        };
        let db = small_db();
        let a = ChurnGenerator::new(&cfg).next_batch(&db);
        let b = ChurnGenerator::new(&cfg).next_batch(&db);
        assert_eq!(a, b);
        let c = ChurnGenerator::new(&ChurnConfig { seed: 10, ..cfg }).next_batch(&db);
        assert_ne!(a, c);
    }

    #[test]
    fn insert_ratio_controls_the_mix() {
        let db = small_db();
        let grow = ChurnGenerator::new(&ChurnConfig {
            batch_size: 64,
            insert_ratio: 1.0,
            seed: 3,
        })
        .next_batch(&db);
        assert_eq!(grow.inserts.len(), 64);
        assert!(grow.deletes.is_empty());
        let shrink = ChurnGenerator::new(&ChurnConfig {
            batch_size: 64,
            insert_ratio: 0.0,
            seed: 3,
        })
        .next_batch(&db);
        assert!(shrink.inserts.is_empty());
        assert_eq!(shrink.deletes.len(), 64);
        let mixed = ChurnGenerator::new(&ChurnConfig {
            batch_size: 64,
            insert_ratio: 0.5,
            seed: 3,
        })
        .next_batch(&db);
        assert!(!mixed.inserts.is_empty() && !mixed.deletes.is_empty());
    }

    #[test]
    fn protected_annotations_survive() {
        let mut db = small_db();
        let protected: HashSet<AnnotId> = db.tuple_annots(RelId(0)).iter().copied().collect();
        let mut gen = ChurnGenerator::new(&ChurnConfig {
            batch_size: 32,
            insert_ratio: 0.0,
            seed: 7,
        })
        .protect(protected.iter().copied())
        .restrict_to([RelId(0)]);
        // Region has 5 tuples, all protected: every delete attempt gives up.
        let delta = gen.next_batch(&db);
        assert!(delta.deletes.is_empty());
        db.apply_delta(&delta);
        assert_eq!(db.relation_len(RelId(0)), 5);
    }

    #[test]
    fn heavy_presets_skew_the_mix() {
        let db = small_db();
        let grow = ChurnGenerator::new(&ChurnConfig::insert_heavy(3)).next_batch(&db);
        assert!(grow.inserts.len() > grow.deletes.len() * 3);
        let shrink = ChurnGenerator::new(&ChurnConfig::delete_heavy(3)).next_batch(&db);
        assert!(shrink.deletes.len() > shrink.inserts.len() * 3);
    }

    /// Churn streams as recovery workloads: the materialized stream must
    /// replay cleanly through the durable engine, and a reopen after all of
    /// it must land bit-for-bit on the stream's own oracle.
    #[test]
    fn recovery_stream_round_trips_through_durable_storage() {
        use provabs_relational::storage::{shared, DurableDatabase, DurableOptions, MemVfs};
        let mut db = small_db();
        db.build_indexes();
        for cfg in [ChurnConfig::insert_heavy(21), ChurnConfig::delete_heavy(21)] {
            let (deltas, oracle) = recovery_stream(&db, &cfg, 6);
            assert_eq!(deltas.len(), 6);
            let vfs = shared(MemVfs::new());
            let mut ddb = DurableDatabase::create(
                vfs.clone(),
                "churn",
                db.clone(),
                DurableOptions::default(),
            )
            .unwrap();
            for delta in &deltas {
                ddb.apply_delta(delta).unwrap();
            }
            drop(ddb);
            let (re, info) =
                DurableDatabase::open(vfs, "churn", DurableOptions::default()).unwrap();
            assert_eq!(info.committed_txns, 6);
            assert!(re.db().same_state(&oracle), "reopen != churn oracle");
        }
    }

    #[test]
    fn batches_stay_applicable_and_maintainable_over_many_steps() {
        let (mut db, rels) = generate(&TpchConfig {
            lineitem_rows: 300,
            seed: 11,
        });
        let q = parse_cq(
            "Q(ok) :- Orders(ok, ck, st, yr, '1-URGENT'), Lineitem(ok, pk, sk, ln, qt, rf, sm)",
            db.schema(),
        )
        .unwrap();
        let mut cached = eval_cq(&db, &q);
        let mut gen = ChurnGenerator::new(&ChurnConfig {
            batch_size: 12,
            insert_ratio: 0.5,
            seed: 13,
        })
        .restrict_to([rels.orders, rels.lineitem]);
        let before = db.len();
        for step in 0..10 {
            let delta = gen.next_batch(&db);
            assert!(!delta.is_empty(), "step {step} produced nothing");
            let out = apply_delta_with_queries(&mut db, &delta, std::slice::from_ref(&q));
            assert!(out.deltas[0].merge_into(&mut cached), "step {step}");
            assert_eq!(cached, eval_cq(&db, &q), "step {step}");
        }
        // Roughly balanced churn keeps the database near its original size.
        let after = db.len() as f64 / before as f64;
        assert!((0.8..1.2).contains(&after), "size drifted to {after}");
    }
}
