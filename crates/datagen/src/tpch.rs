//! A miniature, deterministic TPC-H dbgen and the §5.1 TPC-H workload.
//!
//! All eight relations are generated with the standard key structure
//! (region ← nation ← supplier/customer, part/supplier ← partsupp,
//! customer ← orders ← lineitem) and the categorical columns the CQ
//! workload filters on. Numeric-heavy columns that no CQ touches are
//! trimmed. Dates are bucketed to years (CQs have no range predicates).

use provabs_relational::{parse_cq, Database, RelId, Schema, Value, ValueId};
use provabs_semiring::AnnotId;
use provabs_tree::{balanced_tree, AbstractionTree, BalancedTreeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Scale and seed of the generator.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Target number of lineitem rows (all other relations scale off it,
    /// mirroring dbgen's ratios).
    pub lineitem_rows: usize,
    /// RNG seed; equal configs generate identical databases.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            lineitem_rows: 3_000,
            seed: 42,
        }
    }
}

/// Relation ids of a generated TPC-H database.
#[derive(Debug, Clone, Copy)]
pub struct TpchRelations {
    /// `Region(rk, name)`.
    pub region: RelId,
    /// `Nation(nk, name, rk)`.
    pub nation: RelId,
    /// `Supplier(sk, name, nk)`.
    pub supplier: RelId,
    /// `Customer(ck, name, nk, mktsegment)`.
    pub customer: RelId,
    /// `Part(pk, name, brand, type)`.
    pub part: RelId,
    /// `Partsupp(pk, sk, availqty)`.
    pub partsupp: RelId,
    /// `Orders(ok, ck, orderstatus, orderyear, orderpriority)`.
    pub orders: RelId,
    /// `Lineitem(ok, pk, sk, linenumber, quantity, returnflag, shipmode)`.
    pub lineitem: RelId,
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const STATUSES: [&str; 3] = ["F", "O", "P"];
const RETURNFLAGS: [&str; 3] = ["R", "A", "N"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#55"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "STANDARD POLISHED TIN",
    "SMALL PLATED COPPER",
    "MEDIUM BRUSHED NICKEL",
    "PROMO BURNISHED BRASS",
    "LARGE BRUSHED STEEL",
];

/// Interns a string pool once, so the categorical columns below emit
/// pre-interned [`ValueId`]s instead of formatting and re-parsing strings.
fn intern_pool(db: &mut Database, pool: &[&str]) -> Vec<ValueId> {
    pool.iter()
        .map(|s| db.intern_value(Value::str(s)))
        .collect()
}

/// Generates the database. Row counts (relative to `lineitem_rows = L`):
/// region 5, nation 25, supplier `L/100`, customer `L/15`, part `L/20`,
/// partsupp `2·parts`, orders `L/4`, lineitem `L`.
///
/// Tuples are emitted straight into the columnar storage as interned ids:
/// categorical pools are interned once up front, keys intern through the
/// dictionary (`intern_value` memoizes), and no intermediate string is
/// formatted or re-parsed. The produced database is value-for-value
/// identical to the old `insert_str` path (same RNG draw sequence, same
/// decoded tuples), so the checked-in bench baselines stay valid.
pub fn generate(cfg: &TpchConfig) -> (Database, TpchRelations) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    let rels = TpchRelations {
        region: db.add_relation("Region", &["rk", "rname"]),
        nation: db.add_relation("Nation", &["nk", "nname", "rk"]),
        supplier: db.add_relation("Supplier", &["sk", "sname", "nk"]),
        customer: db.add_relation("Customer", &["ck", "cname", "nk", "mktsegment"]),
        part: db.add_relation("Part", &["pk", "pname", "brand", "ptype"]),
        partsupp: db.add_relation("Partsupp", &["pk", "sk", "availqty"]),
        orders: db.add_relation("Orders", &["ok", "ck", "ostatus", "oyear", "opriority"]),
        lineitem: db.add_relation(
            "Lineitem",
            &["ok", "pk", "sk", "lnum", "qty", "rflag", "shipmode"],
        ),
    };
    let l = cfg.lineitem_rows.max(40);
    let n_supp = (l / 100).max(4);
    let n_cust = (l / 15).max(8);
    let n_part = (l / 20).max(8);
    let n_ord = (l / 4).max(8);

    let regions = intern_pool(&mut db, &REGIONS);
    let segments = intern_pool(&mut db, &SEGMENTS);
    let priorities = intern_pool(&mut db, &PRIORITIES);
    let statuses = intern_pool(&mut db, &STATUSES);
    let returnflags = intern_pool(&mut db, &RETURNFLAGS);
    let shipmodes = intern_pool(&mut db, &SHIPMODES);
    let brands = intern_pool(&mut db, &BRANDS);
    let types = intern_pool(&mut db, &TYPES);
    // Key spaces are dense 0..n integers: intern each once up front so the
    // hot loops below index a slice instead of probing the dictionary.
    let max_key = n_supp.max(n_cust).max(n_part).max(n_ord).max(25);
    let ints: Vec<ValueId> = (0..max_key as i64)
        .map(|i| db.intern_value(Value::int(i)))
        .collect();

    for (i, &name) in regions.iter().enumerate() {
        db.insert_ids(rels.region, &format!("rg{i}"), &[ints[i], name]);
    }
    for i in 0..25usize {
        let rk = i % 5;
        let nname = db.intern_value(Value::str(&format!("NATION{i:02}")));
        db.insert_ids(rels.nation, &format!("na{i}"), &[ints[i], nname, ints[rk]]);
    }
    for i in 0..n_supp {
        let nk = rng.random_range(0..25usize);
        let sname = db.intern_value(Value::str(&format!("Supplier#{i:05}")));
        db.insert_ids(
            rels.supplier,
            &format!("su{i}"),
            &[ints[i], sname, ints[nk]],
        );
    }
    for i in 0..n_cust {
        let nk = rng.random_range(0..25usize);
        let seg = segments[rng.random_range(0..segments.len())];
        let cname = db.intern_value(Value::str(&format!("Customer#{i:06}")));
        db.insert_ids(
            rels.customer,
            &format!("cu{i}"),
            &[ints[i], cname, ints[nk], seg],
        );
    }
    let part_keys: Vec<ValueId> = ints[..n_part].to_vec();
    for (i, &pk) in part_keys.iter().enumerate() {
        let brand = brands[rng.random_range(0..brands.len())];
        let ptype = types[rng.random_range(0..types.len())];
        let pname = db.intern_value(Value::str(&format!("part {i}")));
        db.insert_ids(rels.part, &format!("pa{i}"), &[pk, pname, brand, ptype]);
    }
    // Each part is stocked by two suppliers (dbgen uses four). Lineitems
    // reference these pairs, as in dbgen.
    let mut ps_pairs: Vec<(usize, usize)> = Vec::with_capacity(2 * n_part);
    let mut ps = 0usize;
    for pk in 0..n_part {
        for _ in 0..2 {
            let sk = rng.random_range(0..n_supp);
            let qty = db.intern_value(Value::int(rng.random_range(1..10_000i64)));
            db.insert_ids(
                rels.partsupp,
                &format!("ps{ps}"),
                &[ints[pk], ints[sk], qty],
            );
            ps_pairs.push((pk, sk));
            ps += 1;
        }
    }
    for i in 0..n_ord {
        let ck = rng.random_range(0..n_cust);
        let status = statuses[rng.random_range(0..statuses.len())];
        let year = db.intern_value(Value::int(rng.random_range(1992..=1998i64)));
        let pri = priorities[rng.random_range(0..priorities.len())];
        db.insert_ids(
            rels.orders,
            &format!("or{i}"),
            &[ints[i], ints[ck], status, year, pri],
        );
    }
    // Lineitems: 1..=7 per order round-robin until the target count; this
    // leaves plenty of orders with ≥ 3 lineitems for Q21's triple self-join.
    let mut li = 0usize;
    let mut order = 0usize;
    while li < l {
        let per = rng.random_range(1..=7usize).min(l - li);
        let ok = order % n_ord;
        order += 1;
        let mut last_pair: Option<(usize, usize)> = None;
        for lnum in 0..per {
            // With probability 0.35 reuse the previous lineitem's part and
            // supplier (the same part shipped in several batches) — this
            // gives the part/supplier-joined queries (Q9, Q21) in-order
            // substitutes, as the full-scale dataset has.
            let (pk, sk) = match last_pair {
                Some(pair) if rng.random_bool(0.35) => pair,
                _ => ps_pairs[rng.random_range(0..ps_pairs.len())],
            };
            last_pair = Some((pk, sk));
            let qty = db.intern_value(Value::int(rng.random_range(1..=50i64)));
            let rf = returnflags[rng.random_range(0..returnflags.len())];
            let sm = shipmodes[rng.random_range(0..shipmodes.len())];
            db.insert_ids(
                rels.lineitem,
                &format!("li{li}"),
                &[ints[ok], ints[pk], ints[sk], ints[lnum], qty, rf, sm],
            );
            li += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// The §5.1 TPC-H abstraction tree: the lineitem annotations (up to
/// `num_leaves` of them) divided into even subcategories, `height` levels
/// deep.
///
/// With `shuffle = false` (the default used by the experiment harness),
/// lineitems stay in insertion order, which clusters lineitems of the same
/// order under shared subcategories — the §4 guidance that domain experts
/// "place annotations of similar tuples in proximity in the tree". With
/// `shuffle = true` the division is uniformly random, as in the paper's
/// scalability stress tests.
pub fn tpch_tree(
    db: &mut Database,
    rels: &TpchRelations,
    num_leaves: usize,
    height: u32,
    seed: u64,
    shuffle: bool,
) -> AbstractionTree {
    let leaves: Vec<AnnotId> = db
        .tuple_annots(rels.lineitem)
        .iter()
        .copied()
        .take(num_leaves)
        .collect();
    let mut counter = 0usize;
    let mut labels: Vec<String> = Vec::new();
    // Pre-intern enough inner labels (worst case: one per leaf per level).
    let spec = BalancedTreeSpec {
        height,
        seed,
        shuffle,
    };
    // Interning happens through the closure; collect names first to satisfy
    // the borrow checker.
    let mut make_name = || {
        let name = format!("licat_{counter}");
        counter += 1;
        labels.push(name.clone());
        name
    };
    // Estimate an upper bound of inner nodes and intern them eagerly.
    let mut interned: Vec<AnnotId> = Vec::new();
    let upper = 2 * leaves.len().max(2) * height as usize + 8;
    for _ in 0..upper {
        let n = make_name();
        interned.push(db.intern_label(&n));
    }
    let mut next = 0usize;
    balanced_tree(&leaves, &spec, || {
        let id = interned[next];
        next += 1;
        id
    })
}

/// Builds a TPC-H abstraction tree guaranteed to cover the lineitem
/// annotations of `example` *and* their same-order siblings (so the
/// K-example's provenance is abstractable and substitutable), padded with
/// further lineitems up to `num_leaves`. Leaves keep insertion order before
/// division, clustering same-order lineitems (see [`tpch_tree`]).
pub fn tpch_tree_covering(
    db: &mut Database,
    rels: &TpchRelations,
    example: &provabs_relational::KExample,
    num_leaves: usize,
    height: u32,
    seed: u64,
    shuffle: bool,
) -> AbstractionTree {
    let mut chosen: std::collections::BTreeSet<AnnotId> = std::collections::BTreeSet::new();
    let annots = db.tuple_annots(rels.lineitem).to_vec();
    // Example lineitems and their same-order siblings, matched on the
    // interned order-key column — id equality, no tuple decoding.
    let ok_col = db.column(rels.lineitem, 0);
    for a in example.variables() {
        if let Some(loc) = db.locate(a) {
            if loc.rel == rels.lineitem {
                let ok = ok_col[loc.row];
                for (i, &u) in ok_col.iter().enumerate() {
                    if u == ok {
                        chosen.insert(annots[i]);
                    }
                }
            }
        }
    }
    // Pad with the remaining lineitems in insertion order.
    for &a in &annots {
        if chosen.len() >= num_leaves {
            break;
        }
        chosen.insert(a);
    }
    let leaves: Vec<AnnotId> = chosen.into_iter().collect();
    let spec = BalancedTreeSpec {
        height,
        seed,
        shuffle,
    };
    let mut interned: Vec<AnnotId> = Vec::new();
    let upper = 2 * leaves.len().max(2) * height as usize + 8;
    for counter in 0..upper {
        let name = format!("licov_{counter}");
        interned.push(db.intern_label(&name));
    }
    let mut next = 0usize;
    balanced_tree(&leaves, &spec, || {
        let id = interned[next];
        next += 1;
        id
    })
}

/// The TPC-H workload (Table 6): queries adapted to CQs. Atom and join
/// counts match the paper's table (Q5 is formed with 7 atoms by routing the
/// part/supplier join through `Partsupp`).
pub fn tpch_queries(schema: &Schema) -> Vec<Workload> {
    let q = |name: &str, text: &str| Workload {
        name: name.to_owned(),
        query: parse_cq(text, schema).unwrap_or_else(|e| panic!("{name}: {e}")),
    };
    vec![
        q(
            "TPCH-Q3",
            "Q(ok) :- Customer(ck, cn, nk, 'BUILDING'), Orders(ok, ck, st, yr, pr), \
             Lineitem(ok, pk, sk, ln, qt, rf, sm)",
        ),
        q(
            "TPCH-Q4",
            "Q(ok) :- Orders(ok, ck, st, yr, '1-URGENT'), Lineitem(ok, pk, sk, ln, qt, rf, sm)",
        ),
        q(
            "TPCH-Q5",
            "Q(nn) :- Customer(ck, cn, nk, seg), Orders(ok, ck, st, yr, pr), \
             Lineitem(ok, pk, sk, ln, qt, rf, sm), Partsupp(pk, sk, aq), \
             Supplier(sk, sn, nk), Nation(nk, nn, rk), Region(rk, 'ASIA')",
        ),
        q(
            "TPCH-Q7",
            "Q(n1, n2) :- Supplier(sk, sn, nk1), Lineitem(ok, pk, sk, ln, qt, rf, sm), \
             Orders(ok, ck, st, yr, pr), Customer(ck, cn, nk2, seg), \
             Nation(nk1, n1, rk1), Nation(nk2, n2, rk2)",
        ),
        q(
            "TPCH-Q9",
            "Q(nn) :- Part(pk, pn, 'Brand#12', pt), Supplier(sk, sn, nk), \
             Lineitem(ok, pk, sk, ln, qt, rf, sm), Partsupp(pk, sk, aq), \
             Orders(ok, ck, st, yr, pr), Nation(nk, nn, rk)",
        ),
        q(
            "TPCH-Q10",
            "Q(ck) :- Customer(ck, cn, nk, seg), Orders(ok, ck, st, yr, pr), \
             Lineitem(ok, pk, sk, ln, qt, 'R', sm), Nation(nk, nn, rk)",
        ),
        q(
            "TPCH-Q21",
            "Q(sn) :- Supplier(sk, sn, nk), Lineitem(ok, pk, sk, l1, q1, r1, m1), \
             Lineitem(ok, p2, s2, l2, q2, r2, m2), Lineitem(ok, p3, s3, l3, q3, r3, m3), \
             Orders(ok, ck, 'F', yr, pr), Nation(nk, nn, rk)",
        ),
    ]
}

/// Draws a fresh RNG for callers that need auxiliary randomness consistent
/// with a config.
pub fn rng_for(cfg: &TpchConfig) -> StdRng {
    StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::eval_cq_limited;
    use provabs_relational::EvalLimits;

    #[test]
    fn generator_is_deterministic() {
        let cfg = TpchConfig::default();
        let (db1, rels) = generate(&cfg);
        let (db2, _) = generate(&cfg);
        assert_eq!(db1.len(), db2.len());
        assert_eq!(db1.tuples(rels.lineitem), db2.tuples(rels.lineitem));
        let (db3, _) = generate(&TpchConfig {
            seed: 43,
            ..cfg.clone()
        });
        assert_ne!(db1.tuples(rels.lineitem), db3.tuples(rels.lineitem));
    }

    #[test]
    fn row_counts_scale() {
        let (db, rels) = generate(&TpchConfig {
            lineitem_rows: 1000,
            seed: 1,
        });
        assert_eq!(db.relation_len(rels.lineitem), 1000);
        assert_eq!(db.relation_len(rels.region), 5);
        assert_eq!(db.relation_len(rels.nation), 25);
        assert_eq!(db.relation_len(rels.orders), 250);
        assert!(db.relation_len(rels.partsupp) >= db.relation_len(rels.part));
    }

    #[test]
    fn all_queries_parse_with_table6_shapes() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 100,
            seed: 1,
        });
        let qs = tpch_queries(db.schema());
        let expected = [
            ("TPCH-Q3", 3, 2),
            ("TPCH-Q4", 2, 1),
            ("TPCH-Q5", 7, 6),
            ("TPCH-Q7", 6, 5),
            ("TPCH-Q9", 6, 5),
            ("TPCH-Q10", 4, 3),
            ("TPCH-Q21", 6, 5),
        ];
        assert_eq!(qs.len(), expected.len());
        for (w, (name, atoms, joins)) in qs.iter().zip(expected) {
            assert_eq!(w.name, name);
            assert_eq!(w.query.body.len(), atoms, "{name}");
            assert_eq!(w.query.num_joins(), joins, "{name}");
            assert!(w.query.is_connected(), "{name}");
            assert!(w.query.is_safe(), "{name}");
        }
    }

    #[test]
    fn queries_produce_output_rows() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 3000,
            seed: 7,
        });
        for w in tpch_queries(db.schema()) {
            let out = eval_cq_limited(
                &db,
                &w.query,
                EvalLimits {
                    max_outputs: 2,
                    max_derivations: 200_000,
                },
            );
            assert!(
                out.len() >= 2,
                "{} produced {} rows; need >= 2 for a K-example",
                w.name,
                out.len()
            );
        }
    }

    #[test]
    fn tree_covers_lineitem_leaves() {
        let (mut db, rels) = generate(&TpchConfig {
            lineitem_rows: 500,
            seed: 3,
        });
        let tree = tpch_tree(&mut db, &rels, 200, 5, 11, false);
        assert_eq!(tree.num_leaves(), 200);
        assert_eq!(tree.height(), 5);
        assert!(tree.compatible_with(&db));
        // Every leaf is a lineitem annotation.
        for &leaf in tree.leaves() {
            let (rel, _) = db.tuple_by_annot(leaf).unwrap();
            assert_eq!(rel, rels.lineitem);
        }
    }
}
