//! Adversarially-ordered workload variants for the query planner.
//!
//! The cost-based planner (PR 5) exists because a written atom order can be
//! orders of magnitude worse than a statistics-guided one. This module
//! manufactures that situation deterministically: [`adversarial_order`]
//! rewrites a query so its body runs **pessimally** under
//! [`PlanMode::WrittenOrder`](provabs_relational::PlanMode) — the largest,
//! least-selective relations first, constant-bearing (most selective) atoms
//! last — while remaining the *same query* (identical head, identical atom
//! multiset, therefore identical output K-relation). The `bench::planner`
//! harness and the `BENCH_5.json` perf gate evaluate these variants twice,
//! planned versus written order, and demand the planner win by ≥ 2×.

use crate::workload::Workload;
use provabs_relational::{Cq, Database};

/// Rewrites `q` with a pessimal written order. Three ingredients, applied
/// greedily:
///
/// 1. open with the largest constant-free relation (an unfiltered scan);
/// 2. follow with a *disconnected* atom when the join graph offers one —
///    written-order execution then pays a full cross product before any
///    join variable binds (one such break is planted; chaining more makes
///    the suite quadratically slower without sharpening the comparison);
/// 3. push constant-bearing (most selective) atoms as late as possible,
///    and among equals prefer the larger relation earlier.
///
/// Head and atoms are unchanged, so the rewritten query is semantically
/// identical — only its written order degrades.
///
/// Deterministic: depends only on database content (relation sizes) and the
/// query (ties keep written order).
pub fn adversarial_order(db: &Database, q: &Cq) -> Cq {
    let n = q.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound: std::collections::BTreeSet<provabs_relational::VarId> =
        std::collections::BTreeSet::new();
    let mut crossed = false;
    while !remaining.is_empty() {
        let disconnected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| !q.body[i].variables().any(|v| bound.contains(&v)))
            .collect();
        // The first pick scans cold either way; afterwards, plant one
        // cross-product break when possible.
        let pool = if !order.is_empty() && !crossed && !disconnected.is_empty() {
            crossed = true;
            disconnected
        } else {
            remaining.clone()
        };
        let &worst = pool
            .iter()
            .min_by_key(|&&i| {
                let atom = &q.body[i];
                let consts = atom.terms.iter().filter(|t| t.is_const()).count();
                (consts, std::cmp::Reverse(db.relation_len(atom.rel)), i)
            })
            .expect("pool is non-empty");
        remaining.retain(|&i| i != worst);
        bound.extend(q.body[worst].variables());
        order.push(worst);
    }
    Cq {
        head_name: q.head_name.clone(),
        head: q.head.clone(),
        body: order.into_iter().map(|i| q.body[i].clone()).collect(),
    }
}

/// Applies [`adversarial_order`] to every workload, suffixing names with
/// `/adv`.
pub fn adversarial_workloads(db: &Database, workloads: &[Workload]) -> Vec<Workload> {
    workloads
        .iter()
        .map(|w| Workload {
            name: format!("{}/adv", w.name),
            query: adversarial_order(db, &w.query),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, tpch_queries, TpchConfig};
    use provabs_relational::{eval_cq, plan_cq, PlanMode};

    #[test]
    fn adversarial_variants_keep_the_output() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 300,
            seed: 3,
        });
        for w in tpch_queries(db.schema()) {
            let adv = adversarial_order(&db, &w.query);
            assert_eq!(adv.head, w.query.head, "{}", w.name);
            assert_eq!(adv.body.len(), w.query.body.len(), "{}", w.name);
            assert_eq!(eval_cq(&db, &adv), eval_cq(&db, &w.query), "{}", w.name);
        }
    }

    #[test]
    fn adversarial_order_front_loads_the_big_scans() {
        let (db, rels) = generate(&TpchConfig {
            lineitem_rows: 300,
            seed: 3,
        });
        let q3 = tpch_queries(db.schema())
            .into_iter()
            .find(|w| w.name == "TPCH-Q3")
            .unwrap()
            .query;
        let adv = adversarial_order(&db, &q3);
        // Lineitem (largest, no constants) leads, and the second atom is
        // disconnected from it (Customer shares no variable with
        // Lineitem): written-order execution pays a cross product.
        assert_eq!(adv.body[0].rel, rels.lineitem);
        let first_vars: Vec<_> = adv.body[0].variables().collect();
        assert!(!adv.body[1].variables().any(|v| first_vars.contains(&v)));
        // And the planner undoes the damage: its first atom is not the
        // Lineitem scan, and its prefix stays connected.
        let plan = plan_cq(&db, &adv, PlanMode::CostBased, None);
        assert_ne!(adv.body[plan.atom_order()[0]].rel, rels.lineitem);
        assert!(plan.steps.iter().all(|s| s.connected));
    }

    #[test]
    fn names_are_suffixed() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 100,
            seed: 1,
        });
        let advs = adversarial_workloads(&db, &tpch_queries(db.schema()));
        assert!(advs.iter().all(|w| w.name.ends_with("/adv")));
    }
}
