//! Adversarially-ordered workload variants for the query planner.
//!
//! The cost-based planner (PR 5) exists because a written atom order can be
//! orders of magnitude worse than a statistics-guided one. This module
//! manufactures that situation deterministically: [`adversarial_order`]
//! rewrites a query so its body runs **pessimally** under
//! [`PlanMode::WrittenOrder`](provabs_relational::PlanMode) — the largest,
//! least-selective relations first, constant-bearing (most selective) atoms
//! last — while remaining the *same query* (identical head, identical atom
//! multiset, therefore identical output K-relation). The `bench::planner`
//! harness and the `BENCH_5.json` perf gate evaluate these variants twice,
//! planned versus written order, and demand the planner win by ≥ 2×.

use crate::workload::Workload;
use provabs_relational::{Cq, Database};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rewrites `q` with a pessimal written order. Three ingredients, applied
/// greedily:
///
/// 1. open with the largest constant-free relation (an unfiltered scan);
/// 2. follow with a *disconnected* atom when the join graph offers one —
///    written-order execution then pays a full cross product before any
///    join variable binds (one such break is planted; chaining more makes
///    the suite quadratically slower without sharpening the comparison);
/// 3. push constant-bearing (most selective) atoms as late as possible,
///    and among equals prefer the larger relation earlier.
///
/// Head and atoms are unchanged, so the rewritten query is semantically
/// identical — only its written order degrades.
///
/// Deterministic: depends only on database content (relation sizes) and the
/// query (ties keep written order).
pub fn adversarial_order(db: &Database, q: &Cq) -> Cq {
    let n = q.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound: std::collections::BTreeSet<provabs_relational::VarId> =
        std::collections::BTreeSet::new();
    let mut crossed = false;
    while !remaining.is_empty() {
        let disconnected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| !q.body[i].variables().any(|v| bound.contains(&v)))
            .collect();
        // The first pick scans cold either way; afterwards, plant one
        // cross-product break when possible.
        let pool = if !order.is_empty() && !crossed && !disconnected.is_empty() {
            crossed = true;
            disconnected
        } else {
            remaining.clone()
        };
        let &worst = pool
            .iter()
            .min_by_key(|&&i| {
                let atom = &q.body[i];
                let consts = atom.terms.iter().filter(|t| t.is_const()).count();
                (consts, std::cmp::Reverse(db.relation_len(atom.rel)), i)
            })
            .expect("pool is non-empty");
        remaining.retain(|&i| i != worst);
        bound.extend(q.body[worst].variables());
        order.push(worst);
    }
    Cq {
        head_name: q.head_name.clone(),
        head: q.head.clone(),
        body: order.into_iter().map(|i| q.body[i].clone()).collect(),
    }
}

/// Applies [`adversarial_order`] to every workload, suffixing names with
/// `/adv`.
pub fn adversarial_workloads(db: &Database, workloads: &[Workload]) -> Vec<Workload> {
    workloads
        .iter()
        .map(|w| Workload {
            name: format!("{}/adv", w.name),
            query: adversarial_order(db, &w.query),
        })
        .collect()
}

/// Shape of a [`correlated_skew`] instance. The defaults are tuned so the
/// static cost-based plan is *confidently wrong*: every per-relation
/// statistic the planner reads (relation length, per-column distinct
/// counts) points at the join order that explodes, and only observed
/// cardinalities reveal the cheap one.
#[derive(Debug, Clone)]
pub struct CorrelatedSkewConfig {
    /// Hot keys in `Anchor` (the driving scan). Keep ≤ 64 so the adaptive
    /// engine's sideways distinct-set (capped at 64 values per variable)
    /// never overflows back to planted statistics.
    pub anchor_keys: usize,
    /// `Bloat` rows per anchor key — the mis-estimated fan-out that trips
    /// the re-plan trigger at depth 1.
    pub bloat_per_key: usize,
    /// Singleton cold keys in `Bloat` that drag its *mean* posting length
    /// down to ~2, hiding the hot fan-out from planted statistics.
    pub bloat_cold: usize,
    /// `Wide` rows per anchor key: the atom that looks selective
    /// statically (mean ≈ 2 rows/key) but yields this many rows on every
    /// key `Anchor` actually drives.
    pub wide_per_key: usize,
    /// Singleton cold keys in `Wide` (same statistical camouflage).
    pub wide_cold: usize,
    /// Non-anchor keys in `Narrow`, each carrying [`narrow_per_key`]
    /// rows — they make `Narrow` look *worse* than `Wide` statically
    /// (mean ≈ 6 rows/key) although it is nearly empty on anchor keys.
    ///
    /// [`narrow_per_key`]: CorrelatedSkewConfig::narrow_per_key
    pub narrow_keys: usize,
    /// Rows per non-anchor `Narrow` key.
    pub narrow_per_key: usize,
    /// Anchor keys (chosen by `seed`) that get exactly one `Narrow` row,
    /// so the join output is small but non-empty.
    pub narrow_hits: usize,
    /// RNG seed; picks which anchor keys are `Narrow` hits.
    pub seed: u64,
}

impl Default for CorrelatedSkewConfig {
    fn default() -> Self {
        Self {
            anchor_keys: 32,
            bloat_per_key: 32,
            bloat_cold: 1024,
            wide_per_key: 64,
            wide_cold: 2048,
            narrow_keys: 512,
            narrow_per_key: 6,
            narrow_hits: 2,
            seed: 9,
        }
    }
}

/// Builds a **correlated-skew** database the planted statistics cannot
/// see, plus the 4-atom query that exposes it:
///
/// ```text
/// Q(x) :- Anchor(x), Bloat(x, b), Wide(x, w), Narrow(x, n)
/// ```
///
/// Column-independent statistics say `Wide` (mean ≈ 2 rows per key) beats
/// `Narrow` (mean ≈ 6), so the static cost-based order is
/// `Anchor, Bloat, Wide, Narrow`. But `Wide`'s cheap mean comes from cold
/// singleton keys `Anchor` never produces — on anchor keys it fans out
/// [`wide_per_key`](CorrelatedSkewConfig::wide_per_key)×, while `Narrow`
/// is almost empty there. `Bloat` has the same camouflage, so its real
/// fan-out trips the adaptive re-plan trigger at depth 1; the suffix
/// re-plan then consults sideways-observed postings for the anchor keys
/// actually seen and flips `Narrow` ahead of `Wide`, collapsing the work.
///
/// Deterministic for a fixed config (the RNG only picks narrow-hit keys).
pub fn correlated_skew(cfg: &CorrelatedSkewConfig) -> (Database, Workload) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    let anchor = db.add_relation("Anchor", &["x"]);
    let bloat = db.add_relation("Bloat", &["x", "b"]);
    let wide = db.add_relation("Wide", &["x", "w"]);
    let narrow = db.add_relation("Narrow", &["x", "n"]);

    for k in 0..cfg.anchor_keys {
        db.insert_str(anchor, &format!("a{k}"), &[&k.to_string()]);
        for b in 0..cfg.bloat_per_key {
            db.insert_str(
                bloat,
                &format!("b{k}_{b}"),
                &[&k.to_string(), &b.to_string()],
            );
        }
        for w in 0..cfg.wide_per_key {
            db.insert_str(
                wide,
                &format!("w{k}_{w}"),
                &[&k.to_string(), &w.to_string()],
            );
        }
    }
    // Cold singleton keys: disjoint from anchor keys (offset namespaces),
    // one row each, dragging the mean posting length toward 1.
    for i in 0..cfg.bloat_cold {
        let key = 10_000 + i;
        db.insert_str(bloat, &format!("bc{i}"), &[&key.to_string(), "0"]);
    }
    for i in 0..cfg.wide_cold {
        let key = 20_000 + i;
        db.insert_str(wide, &format!("wc{i}"), &[&key.to_string(), "0"]);
    }
    // Narrow: heavy on keys Anchor never drives...
    for i in 0..cfg.narrow_keys {
        let key = 30_000 + i;
        for n in 0..cfg.narrow_per_key {
            db.insert_str(
                narrow,
                &format!("nk{i}_{n}"),
                &[&key.to_string(), &n.to_string()],
            );
        }
    }
    // ...and nearly empty on anchor keys: `narrow_hits` seeded picks, one
    // row each, so the join output is small but non-empty.
    let mut hits = std::collections::BTreeSet::new();
    while hits.len() < cfg.narrow_hits.min(cfg.anchor_keys) {
        hits.insert(rng.random_range(0..cfg.anchor_keys));
    }
    for (j, k) in hits.into_iter().enumerate() {
        db.insert_str(narrow, &format!("nh{j}"), &[&k.to_string(), "999"]);
    }
    db.build_indexes();

    let query = provabs_relational::parse_cq(
        "Q(x) :- Anchor(x), Bloat(x, b), Wide(x, w), Narrow(x, n)",
        db.schema(),
    )
    .expect("correlated-skew query parses against its own schema");
    let workload = Workload {
        name: format!("corr-skew/s{}", cfg.seed),
        query,
    };
    (db, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, tpch_queries, TpchConfig};
    use provabs_relational::{eval_cq, plan_cq, PlanMode};

    #[test]
    fn adversarial_variants_keep_the_output() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 300,
            seed: 3,
        });
        for w in tpch_queries(db.schema()) {
            let adv = adversarial_order(&db, &w.query);
            assert_eq!(adv.head, w.query.head, "{}", w.name);
            assert_eq!(adv.body.len(), w.query.body.len(), "{}", w.name);
            assert_eq!(eval_cq(&db, &adv), eval_cq(&db, &w.query), "{}", w.name);
        }
    }

    #[test]
    fn adversarial_order_front_loads_the_big_scans() {
        let (db, rels) = generate(&TpchConfig {
            lineitem_rows: 300,
            seed: 3,
        });
        let q3 = tpch_queries(db.schema())
            .into_iter()
            .find(|w| w.name == "TPCH-Q3")
            .unwrap()
            .query;
        let adv = adversarial_order(&db, &q3);
        // Lineitem (largest, no constants) leads, and the second atom is
        // disconnected from it (Customer shares no variable with
        // Lineitem): written-order execution pays a cross product.
        assert_eq!(adv.body[0].rel, rels.lineitem);
        let first_vars: Vec<_> = adv.body[0].variables().collect();
        assert!(!adv.body[1].variables().any(|v| first_vars.contains(&v)));
        // And the planner undoes the damage: its first atom is not the
        // Lineitem scan, and its prefix stays connected.
        let plan = plan_cq(&db, &adv, PlanMode::CostBased, None);
        assert_ne!(adv.body[plan.atom_order()[0]].rel, rels.lineitem);
        assert!(plan.steps.iter().all(|s| s.connected));
    }

    #[test]
    fn correlated_skew_fools_the_static_planner() {
        // The whole point of the fixture: every statistic the planner
        // reads says Wide is cheaper than Narrow, so the static plan runs
        // Anchor, Bloat, Wide, Narrow — exactly the order that explodes.
        let (db, w) = correlated_skew(&CorrelatedSkewConfig::default());
        let plan = plan_cq(&db, &w.query, PlanMode::CostBased, None);
        assert_eq!(
            plan.atom_order(),
            vec![0, 1, 2, 3],
            "static plan must follow the planted (wrong) statistics"
        );
    }

    #[test]
    fn correlated_skew_rewards_adaptivity() {
        use provabs_relational::Evaluator;
        let (db, w) = correlated_skew(&CorrelatedSkewConfig::default());
        let (static_rows, static_work) = Evaluator::new(&db).eval_cq(&w.query);
        let (adaptive_rows, adaptive_work) = Evaluator::new(&db).adaptive(2.0).eval_cq(&w.query);
        assert_eq!(
            adaptive_rows, static_rows,
            "adaptivity must not change answers"
        );
        assert!(
            !static_rows.is_empty(),
            "narrow hits keep the output non-empty"
        );
        assert!(adaptive_work.replan.replans_triggered >= 1);
        assert!(
            adaptive_work.rows_examined * 2 <= static_work.rows_examined,
            "adaptive {} vs static {} rows examined",
            adaptive_work.rows_examined,
            static_work.rows_examined
        );
    }

    #[test]
    fn correlated_skew_is_deterministic_per_seed() {
        let cfg = CorrelatedSkewConfig::default();
        let (db1, w1) = correlated_skew(&cfg);
        let (db2, w2) = correlated_skew(&cfg);
        assert_eq!(w1.name, w2.name);
        assert_eq!(eval_cq(&db1, &w1.query), eval_cq(&db2, &w2.query));
        let (db3, w3) = correlated_skew(&CorrelatedSkewConfig { seed: 17, ..cfg });
        assert_eq!(db1.len(), db3.len(), "seed moves hits, not sizes");
        assert_eq!(w3.name, "corr-skew/s17");
    }

    #[test]
    fn names_are_suffixed() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 100,
            seed: 1,
        });
        let advs = adversarial_workloads(&db, &tpch_queries(db.schema()));
        assert!(advs.iter().all(|w| w.name.ends_with("/adv")));
    }
}
