//! Workload helpers: K-example construction and query scaling.

use provabs_relational::{
    Cq, Database, EvalLimits, Evaluator, Execution, KExample, PlanMode, Term,
};
use std::collections::HashSet;

/// A named workload query.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (e.g. `TPCH-Q3`).
    pub name: String,
    /// The conjunctive query.
    pub query: Cq,
}

/// Evaluates `query` on `db` and extracts a K-example with `rows` rows
/// (Def. 2.4: a subset of the results and their provenance). Returns `None`
/// when the query yields fewer rows.
///
/// Rows are chosen greedily so that their provenance monomials are pairwise
/// disjoint whenever possible. Rows sharing tuples (e.g. two orders of the
/// same customer) make the shared atom ground in every consistent query and
/// degenerate the privacy analysis; the paper's large datasets make such
/// collisions vanishingly rare, so diverse selection reproduces its regime.
///
/// Evaluation is capped: the paper's K-examples carry one monomial per
/// output, so only the first derivation of each output is needed.
pub fn kexample_for(db: &Database, query: &Cq, rows: usize) -> Option<KExample> {
    kexample_for_mode(db, query, rows, PlanMode::default())
}

/// [`kexample_for`] under an explicit [`PlanMode`]. The evaluation is
/// output-capped, and *which* outputs survive a cap depends on the atom
/// order — so harnesses that replay checked-in baselines built before the
/// cost-based planner pass [`PlanMode::Greedy`] to reproduce the same
/// K-examples bit for bit. Execution is pinned to [`Execution::Scalar`]
/// for the same reason (capped enumeration order differs per engine); use
/// [`kexample_for_cfg`] to choose.
pub fn kexample_for_mode(
    db: &Database,
    query: &Cq,
    rows: usize,
    mode: PlanMode,
) -> Option<KExample> {
    kexample_for_cfg(db, query, rows, mode, Execution::Scalar)
}

/// [`kexample_for_mode`] under an explicit [`Execution`] as well.
pub fn kexample_for_cfg(
    db: &Database,
    query: &Cq,
    rows: usize,
    mode: PlanMode,
    exec: Execution,
) -> Option<KExample> {
    if rows == 0 {
        return Some(KExample::default());
    }
    let (out, _) = Evaluator::new(db)
        .plan(mode)
        .execution(exec)
        .limits(EvalLimits {
            max_outputs: rows.saturating_mul(8).max(64),
            max_derivations: 2_000_000,
        })
        .eval_cq(query);
    let candidates = KExample::from_krelation(&out, usize::MAX);
    if candidates.len() < rows {
        return None;
    }
    // Greedy max-coverage: each picked row maximizes the number of
    // annotations not seen yet (queries with constant anchors, such as
    // IMDB-Q3's Kevin Bacon tuple, necessarily share those anchors across
    // all rows; everything else diversifies). Degenerate rows reusing only
    // known tuples are taken last.
    let mut remaining: Vec<&provabs_relational::KRow> = candidates.rows.iter().collect();
    let mut chosen: Vec<provabs_relational::KRow> = Vec::with_capacity(rows);
    let mut used: HashSet<provabs_semiring::AnnotId> = HashSet::new();
    while chosen.len() < rows {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let fresh = r.monomial.support().filter(|a| !used.contains(a)).count();
                (i, (fresh, r.monomial.support_size()))
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        let row = remaining.swap_remove(pos);
        used.extend(row.monomial.support());
        chosen.push(row.clone());
    }
    Some(KExample { rows: chosen })
}

/// Derives the join-scaling variants of Figure 16: connected atom prefixes
/// of `query` from `min_atoms` up to the full body. Atoms are reordered so
/// that every prefix is connected; the head keeps the original terms whose
/// variables survive in the prefix (or falls back to the first variable of
/// the first atom).
pub fn join_variants(query: &Cq, min_atoms: usize) -> Vec<Cq> {
    let n = query.body.len();
    if n < min_atoms {
        return Vec::new();
    }
    // Greedy connected ordering starting from an atom containing a head
    // variable.
    let head_vars: HashSet<_> = query.head.iter().filter_map(Term::as_var).collect();
    let start = (0..n)
        .find(|&i| query.body[i].variables().any(|v| head_vars.contains(&v)))
        .unwrap_or(0);
    let mut order = vec![start];
    let mut used = vec![false; n];
    used[start] = true;
    while order.len() < n {
        let connected_vars: HashSet<_> = order
            .iter()
            .flat_map(|&i| query.body[i].variables())
            .collect();
        let next = (0..n)
            .filter(|&i| !used[i])
            .find(|&i| {
                query.body[i]
                    .variables()
                    .any(|v| connected_vars.contains(&v))
            })
            .or_else(|| (0..n).find(|&i| !used[i]))
            .unwrap();
        used[next] = true;
        order.push(next);
    }
    (min_atoms..=n)
        .map(|k| {
            let body: Vec<_> = order[..k].iter().map(|&i| query.body[i].clone()).collect();
            let body_vars: HashSet<_> = body.iter().flat_map(|a| a.variables()).collect();
            let mut head: Vec<Term> = query
                .head
                .iter()
                .filter(|t| match t {
                    Term::Var(v) => body_vars.contains(v),
                    Term::Const(_) => true,
                })
                .cloned()
                .collect();
            if head.is_empty() {
                let first_var = body
                    .iter()
                    .flat_map(|a| a.variables())
                    .next()
                    .expect("query has variables");
                head.push(Term::Var(first_var));
            }
            Cq::new(head, body)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, tpch_queries, TpchConfig};

    #[test]
    fn kexample_extraction_for_all_tpch_queries() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 3000,
            seed: 7,
        });
        for w in tpch_queries(db.schema()) {
            let ex = kexample_for(&db, &w.query, 2)
                .unwrap_or_else(|| panic!("{} yields no 2-row K-example", w.name));
            assert_eq!(ex.len(), 2);
            assert!(
                ex.resolve(&db).is_some(),
                "{}: unresolved annotations",
                w.name
            );
            // Row degree equals the atom count.
            for row in &ex.rows {
                assert_eq!(row.monomial.degree() as usize, w.query.body.len());
            }
        }
    }

    #[test]
    fn insufficient_rows_returns_none() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 100,
            seed: 7,
        });
        let q = tpch_queries(db.schema()).remove(0).query;
        assert!(kexample_for(&db, &q, 1_000_000).is_none());
    }

    #[test]
    fn join_variants_stay_connected() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 100,
            seed: 7,
        });
        for w in tpch_queries(db.schema()) {
            if w.query.body.len() < 4 {
                continue;
            }
            let variants = join_variants(&w.query, 4);
            assert_eq!(variants.len(), w.query.body.len() - 3, "{}", w.name);
            for v in &variants {
                assert!(v.is_connected(), "{}: disconnected variant", w.name);
                assert!(v.is_safe(), "{}: unsafe variant", w.name);
            }
            // The last variant is the full query body.
            assert_eq!(variants.last().unwrap().body.len(), w.query.body.len());
        }
    }

    #[test]
    fn variants_produce_kexamples() {
        let (db, _) = generate(&TpchConfig {
            lineitem_rows: 2000,
            seed: 9,
        });
        let q21 = tpch_queries(db.schema())
            .into_iter()
            .find(|w| w.name == "TPCH-Q21")
            .unwrap();
        for v in join_variants(&q21.query, 4) {
            assert!(
                kexample_for(&db, &v, 2).is_some(),
                "variant with {} atoms yields no K-example",
                v.body.len()
            );
        }
    }
}
