//! Synthetic datasets and workloads for the provabs experiments (§5.1).
//!
//! The paper evaluates on a 1 GB TPC-H sample \[5\] and the IMDB dataset \[37\].
//! Neither raw dataset ships with this reproduction, so this crate provides
//! deterministic, seeded generators with the same *structural* properties
//! the experiments exercise (key-joinable relations, self-joinable fact
//! tables, categorizable attributes), plus:
//!
//! * the 7 TPC-H queries (Q3, Q4, Q5, Q7, Q9, Q10, Q21) and 7 IMDB queries
//!   (Q1–Q7) adapted to CQs exactly as §5.1 prescribes (aggregation and
//!   arithmetic predicates dropped);
//! * the paper's abstraction trees: the TPC-H tree (lineitem randomly
//!   divided into even subcategories) and the IMDB ontology tree
//!   (birth-year / release-year ranges, genre types);
//! * workload helpers turning query outputs into K-examples and deriving
//!   the join-scaling variants of Figure 16;
//! * update-stream (churn) generators feeding the incremental update
//!   engine with deterministic insert/delete batches ([`churn`]);
//! * closed-loop service workloads — zipf-skewed query schedules with
//!   interleaved churn — for the `provabsd` session service ([`service`]);
//! * adversarially-ordered query variants stressing the cost-based planner
//!   ([`adversarial`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod churn;
pub mod imdb;
pub mod service;
pub mod tpch;
pub mod workload;

pub use adversarial::{
    adversarial_order, adversarial_workloads, correlated_skew, CorrelatedSkewConfig,
};
pub use churn::{recovery_stream, ChurnConfig, ChurnGenerator};
pub use service::{service_schedule, ServiceOp, ServiceWorkloadConfig, Zipf};
pub use workload::{join_variants, kexample_for, kexample_for_cfg, kexample_for_mode, Workload};
