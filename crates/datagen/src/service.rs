//! Closed-loop service workloads: zipf-skewed query mixes with churn.
//!
//! The `provabsd` service is exercised by a *closed loop*: a fixed set of
//! clients where each client issues its next request only after the
//! previous one completes. This module materializes such a loop as a
//! deterministic operation schedule — queries skewed over templates by a
//! [`Zipf`] distribution (hot templates dominate, exactly the regime a
//! shared cross-session cache rewards) interleaved with writer update
//! batches drawn from the [`churn`] generator.
//!
//! Everything is seeded: equal configs yield identical schedules, so the
//! service bench gate can replay admission decisions, budget
//! cancellations, and epoch publications bit-for-bit.
//!
//! [`churn`]: crate::churn

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A zipf-skewed distribution over ranks `0..n` with exponent `s`
/// (`weight(rank) = 1 / (rank + 1)^s`), hand-rolled on cumulative weights
/// so the vendored RNG's tiny API suffices.
///
/// `s = 0` degenerates to uniform; `s ≈ 1` is the classic web-workload
/// skew where the top template draws the bulk of the traffic.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cum[i]` covers ranks `0..=i`.
    cum: Vec<f64>,
}

impl Zipf {
    /// A distribution over `n` ranks (at least 1) with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cum.push(total);
        }
        Self { cum }
    }

    /// Ranks this distribution covers.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the distribution is the trivial single-rank one.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..len()`. The uniform variate takes the top 53
    /// bits of one `next_u64`, so sampling is exactly reproducible from
    /// the seed (no platform-dependent float paths).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cum.last().expect("at least one rank");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let needle = unit * total;
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&needle).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

/// Shape of a closed-loop service run.
#[derive(Debug, Clone)]
pub struct ServiceWorkloadConfig {
    /// Concurrent clients in the closed loop.
    pub clients: usize,
    /// Total operations in the schedule (queries + update batches).
    pub operations: usize,
    /// Query templates available (ranks of the zipf distribution).
    pub templates: usize,
    /// Zipf exponent of the template skew (`0` = uniform).
    pub zipf_s: f64,
    /// Every `update_every`-th operation is a writer update batch
    /// (`0` = read-only schedule).
    pub update_every: usize,
    /// RNG seed; equal configs yield identical schedules.
    pub seed: u64,
}

impl Default for ServiceWorkloadConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            operations: 64,
            templates: 7,
            zipf_s: 1.1,
            update_every: 8,
            seed: 42,
        }
    }
}

/// One scheduled operation of the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOp {
    /// Client `client` evaluates query template `template` against its
    /// pinned session.
    Query {
        /// Issuing client, in `0..clients`.
        client: usize,
        /// Template rank, in `0..templates` (0 is the hottest).
        template: usize,
    },
    /// The single writer applies its next churn batch and publishes a new
    /// epoch.
    Update,
}

/// Materializes the deterministic operation schedule of a closed-loop run:
/// clients round-robin (each client's next request follows its previous
/// one), templates zipf-skewed, and every `update_every`-th slot taken by
/// the writer.
pub fn service_schedule(cfg: &ServiceWorkloadConfig) -> Vec<ServiceOp> {
    let zipf = Zipf::new(cfg.templates, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
    let clients = cfg.clients.max(1);
    let mut ops = Vec::with_capacity(cfg.operations);
    let mut queries = 0usize;
    for slot in 0..cfg.operations {
        if cfg.update_every > 0 && (slot + 1) % cfg.update_every == 0 {
            ops.push(ServiceOp::Update);
        } else {
            ops.push(ServiceOp::Query {
                client: queries % clients,
                template: zipf.sample(&mut rng),
            });
            queries += 1;
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let cfg = ServiceWorkloadConfig::default();
        assert_eq!(service_schedule(&cfg), service_schedule(&cfg));
        let other = service_schedule(&ServiceWorkloadConfig { seed: 7, ..cfg });
        assert_ne!(service_schedule(&ServiceWorkloadConfig::default()), other);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(8, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[3],
            "rank 0 must dominate rank 3: {counts:?}"
        );
        assert!(counts[0] > counts[7] * 4, "heavy head: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "full support: {counts:?}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn update_cadence_and_client_rotation() {
        let cfg = ServiceWorkloadConfig {
            clients: 3,
            operations: 20,
            update_every: 5,
            ..Default::default()
        };
        let ops = service_schedule(&cfg);
        assert_eq!(ops.len(), 20);
        let updates = ops.iter().filter(|o| **o == ServiceOp::Update).count();
        assert_eq!(updates, 4, "every 5th slot is a writer batch");
        // Queries round-robin the clients in order.
        let clients: Vec<usize> = ops
            .iter()
            .filter_map(|o| match o {
                ServiceOp::Query { client, .. } => Some(*client),
                ServiceOp::Update => None,
            })
            .collect();
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(*c, i % 3);
        }
    }

    #[test]
    fn read_only_schedule_has_no_updates() {
        let ops = service_schedule(&ServiceWorkloadConfig {
            update_every: 0,
            operations: 16,
            ..Default::default()
        });
        assert!(ops.iter().all(|o| matches!(o, ServiceOp::Query { .. })));
    }
}
