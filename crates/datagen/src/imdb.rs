//! A synthetic IMDB-like dataset and the §5.1 IMDB workload.
//!
//! People (with birth years and countries), movies (with release years),
//! genres, and cast/directs edges. Two named anchors — Kevin Bacon and Tom
//! Cruise — are guaranteed to exist with sufficiently many co-stars so that
//! the anchored queries (Q3, Q6) return multiple rows.

use provabs_relational::{parse_cq, Database, RelId, Schema, Value, ValueId};
use provabs_semiring::AnnotId;
use provabs_tree::{AbstractionTree, TreeBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::Workload;

/// Scale and seed of the generator.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of people (actors and directors).
    pub num_people: usize,
    /// Number of movies.
    pub num_movies: usize,
    /// Average cast size per movie.
    pub cast_per_movie: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            num_people: 150,
            num_movies: 150,
            cast_per_movie: 5,
            seed: 42,
        }
    }
}

/// Relation ids of a generated IMDB database.
#[derive(Debug, Clone, Copy)]
pub struct ImdbRelations {
    /// `Person(pid, name, birthyear, country)`.
    pub person: RelId,
    /// `Movie(mid, title, year)`.
    pub movie: RelId,
    /// `Genre(mid, genre)`.
    pub genre: RelId,
    /// `CastIn(mid, pid)`.
    pub cast: RelId,
    /// `Directs(mid, pid)`.
    pub directs: RelId,
}

const GENRES: [&str; 6] = ["Action", "Comedy", "Drama", "Thriller", "Romance", "Horror"];
const COUNTRIES: [&str; 5] = ["USA", "UK", "France", "India", "Japan"];

/// Generates the database.
pub fn generate(cfg: &ImdbConfig) -> (Database, ImdbRelations) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    let rels = ImdbRelations {
        person: db.add_relation("Person", &["pid", "pname", "byear", "country"]),
        movie: db.add_relation("Movie", &["mid", "title", "myear"]),
        genre: db.add_relation("Genre", &["mid", "gname"]),
        cast: db.add_relation("CastIn", &["mid", "pid"]),
        directs: db.add_relation("Directs", &["mid", "pid"]),
    };
    let n_people = cfg.num_people.max(20);
    let n_movies = cfg.num_movies.max(20);
    // Direct interned emission: the categorical pools and the dense id key
    // space intern once, every row lands as ids (see the TPC-H generator).
    let genre_ids: Vec<ValueId> = GENRES
        .iter()
        .map(|g| db.intern_value(Value::str(g)))
        .collect();
    let country_ids: Vec<ValueId> = COUNTRIES
        .iter()
        .map(|c| db.intern_value(Value::str(c)))
        .collect();
    let ints: Vec<ValueId> = (0..n_people.max(n_movies) as i64)
        .map(|i| db.intern_value(Value::int(i)))
        .collect();
    // Person 0 is Kevin Bacon, person 1 is Tom Cruise.
    let person_keys: Vec<ValueId> = ints[..n_people].to_vec();
    for (i, &pid) in person_keys.iter().enumerate() {
        let name = match i {
            0 => "Kevin Bacon".to_owned(),
            1 => "Tom Cruise".to_owned(),
            _ => format!("Person {i:05}"),
        };
        // Triangular concentration around 1960: real casts cluster in
        // cohorts, which keeps birth-year *ranges* (the ontology tree's
        // inner nodes) well populated.
        let byear = 1930 + (rng.random_range(0..=32i64) + rng.random_range(0..=33i64));
        let byear = if i == 0 { 1958 } else { byear };
        let country = country_ids[rng.random_range(0..country_ids.len())];
        let name = db.intern_value(Value::str(&name));
        let byear = db.intern_value(Value::int(byear));
        db.insert_ids(rels.person, &format!("pe{i}"), &[pid, name, byear, country]);
    }
    let mut cast_edge = 0usize;
    let mut genre_edge = 0usize;
    for m in 0..n_movies {
        // Concentrated release years (1980–2009, triangular around 1995).
        let year = 1980 + (rng.random_range(0..=14i64) + rng.random_range(0..=15i64));
        // Every 10th movie is from 1995 so Q1 has results.
        let year = if m % 10 == 0 { 1995 } else { year };
        let title = db.intern_value(Value::str(&format!("Movie {m:05}")));
        let year = db.intern_value(Value::int(year));
        db.insert_ids(rels.movie, &format!("mo{m}"), &[ints[m], title, year]);
        // 1–2 genres.
        let g1 = rng.random_range(0..genre_ids.len());
        db.insert_ids(
            rels.genre,
            &format!("ge{genre_edge}"),
            &[ints[m], genre_ids[g1]],
        );
        genre_edge += 1;
        if rng.random_bool(0.4) {
            let g2 = (g1 + 1 + rng.random_range(0..genre_ids.len() - 1)) % genre_ids.len();
            db.insert_ids(
                rels.genre,
                &format!("ge{genre_edge}"),
                &[ints[m], genre_ids[g2]],
            );
            genre_edge += 1;
        }
        // Cast: every 5th movie includes Kevin Bacon, every 7th Tom Cruise.
        let mut members: Vec<usize> = Vec::new();
        if m % 5 == 0 {
            members.push(0);
        }
        if m % 7 == 0 {
            members.push(1);
        }
        while members.len() < cfg.cast_per_movie.max(2) {
            let p = rng.random_range(0..n_people);
            if !members.contains(&p) {
                members.push(p);
            }
        }
        for p in members {
            db.insert_ids(rels.cast, &format!("ca{cast_edge}"), &[ints[m], ints[p]]);
            cast_edge += 1;
        }
        // One director (exactly one per movie, so `m` numbers the edge).
        let d = rng.random_range(0..n_people);
        db.insert_ids(rels.directs, &format!("di{m}"), &[ints[m], ints[d]]);
    }
    db.build_indexes();
    (db, rels)
}

/// The §5.1 IMDB ontology tree:
///
/// 1. people categorized by birth year, then by ranges of years;
/// 2. cast/directs edges categorized similarly by year — we use the
///    *movie's* release year, which clusters the edges of one movie under a
///    shared subcategory (the §4 "similar tuples in proximity" guidance; the
///    paper's wording, "categorized similarly", leaves the year choice
///    open);
/// 3. genre tuples categorized by genre type;
/// 4. movies categorized by release year, then ranges;
/// 5. main categories under the root.
pub fn imdb_tree(db: &mut Database, rels: &ImdbRelations) -> AbstractionTree {
    // Collect the categorization data before interning (borrow discipline).
    // All reads are columnar: year/genre columns decode per *distinct* cell
    // through the dictionary, and the movie-year join below is keyed by the
    // interned movie id — cast/directs edges never decode their key column.
    let int_col = |db: &Database, rel: RelId, col: usize, default: i64| -> Vec<i64> {
        db.column(rel, col)
            .iter()
            .map(|&v| db.value(v).as_int().unwrap_or(default))
            .collect()
    };
    let birth_year_of: Vec<(AnnotId, i64)> = db
        .tuple_annots(rels.person)
        .iter()
        .copied()
        .zip(int_col(db, rels.person, 2, 1970))
        .collect();
    let movie_year: std::collections::HashMap<ValueId, i64> = db
        .column(rels.movie, 0)
        .iter()
        .copied()
        .zip(int_col(db, rels.movie, 2, 2000))
        .collect();
    let movie_year_of: Vec<(AnnotId, i64)> = db
        .tuple_annots(rels.movie)
        .iter()
        .copied()
        .zip(int_col(db, rels.movie, 2, 2000))
        .collect();
    let genre_of: Vec<(AnnotId, String)> = db
        .tuple_annots(rels.genre)
        .iter()
        .zip(db.column(rels.genre, 1))
        .map(|(&a, &g)| (a, db.value(g).as_str().unwrap_or("Unknown").to_owned()))
        .collect();
    let edge_years = |rel: RelId, db: &Database| -> Vec<(AnnotId, i64)> {
        db.tuple_annots(rel)
            .iter()
            .zip(db.column(rel, 0))
            .map(|(&a, mid)| (a, movie_year.get(mid).copied().unwrap_or(2000)))
            .collect()
    };
    let cast_years = edge_years(rels.cast, db);
    let dir_years = edge_years(rels.directs, db);

    let root = db.intern_label("imdb_root");
    let mut b = TreeBuilder::new(root);
    let add_year_category =
        |db: &mut Database, b: &mut TreeBuilder, name: &str, items: &[(AnnotId, i64)]| {
            let cat = db.intern_label(name);
            b.add_child(root, cat);
            // Ranges of 20 years, then single years, then the leaves.
            let mut by_range: std::collections::BTreeMap<i64, Vec<(AnnotId, i64)>> =
                std::collections::BTreeMap::new();
            for &(a, y) in items {
                by_range
                    .entry(y - y.rem_euclid(20))
                    .or_default()
                    .push((a, y));
            }
            for (range_start, members) in by_range {
                let range_label =
                    db.intern_label(&format!("{name}_{range_start}_{}", range_start + 19));
                b.add_child(cat, range_label);
                let mut by_year: std::collections::BTreeMap<i64, Vec<AnnotId>> =
                    std::collections::BTreeMap::new();
                for (a, y) in members {
                    by_year.entry(y).or_default().push(a);
                }
                for (year, annots) in by_year {
                    let year_label = db.intern_label(&format!("{name}_y{year}"));
                    b.add_child(range_label, year_label);
                    for a in annots {
                        b.add_child(year_label, a);
                    }
                }
            }
        };
    add_year_category(db, &mut b, "people_by_birth", &birth_year_of);
    add_year_category(db, &mut b, "cast_by_year", &cast_years);
    add_year_category(db, &mut b, "directs_by_year", &dir_years);
    add_year_category(db, &mut b, "movies_by_year", &movie_year_of);
    // Genres by type.
    let genre_cat = db.intern_label("genres");
    b.add_child(root, genre_cat);
    let mut by_type: std::collections::BTreeMap<String, Vec<AnnotId>> =
        std::collections::BTreeMap::new();
    for (a, g) in genre_of {
        by_type.entry(g).or_default().push(a);
    }
    for (g, annots) in by_type {
        let label = db.intern_label(&format!("genre_{g}"));
        b.add_child(genre_cat, label);
        for a in annots {
            b.add_child(label, a);
        }
    }
    b.build()
}

/// The IMDB workload (§5.1 / Table 6 shapes).
pub fn imdb_queries(schema: &Schema) -> Vec<Workload> {
    let q = |name: &str, text: &str| Workload {
        name: name.to_owned(),
        query: parse_cq(text, schema).unwrap_or_else(|e| panic!("{name}: {e}")),
    };
    vec![
        // Q1: actors starring in a movie from 1995 (3 atoms, 2 joins).
        q(
            "IMDB-Q1",
            "Q(a) :- Person(a, an, ay, ac), CastIn(m, a), Movie(m, t, 1995)",
        ),
        // Q2: actors in a drama directed by an American director (6/5).
        q(
            "IMDB-Q2",
            "Q(a) :- Person(a, an, ay, ac), CastIn(m, a), Movie(m, t, y), \
             Genre(m, 'Drama'), Directs(m, d), Person(d, dn, dy, 'USA')",
        ),
        // Q3: actors with Bacon number 1 (5/4).
        q(
            "IMDB-Q3",
            "Q(a) :- Person(a, an, ay, ac), CastIn(m, a), Movie(m, t, y), \
             CastIn(m, kb), Person(kb, 'Kevin Bacon', ky, kc)",
        ),
        // Q4: directors of both an action and a comedy movie (7/6).
        q(
            "IMDB-Q4",
            "Q(d) :- Person(d, dn, dy, dc), Directs(m1, d), Genre(m1, 'Action'), \
             Movie(m1, t1, y1), Directs(m2, d), Genre(m2, 'Comedy'), Movie(m2, t2, y2)",
        ),
        // Q5: comedy movies starring an actor born in 1978 (4/3).
        q(
            "IMDB-Q5",
            "Q(m) :- Movie(m, t, y), Genre(m, 'Comedy'), CastIn(m, a), \
             Person(a, an, 1978, ac)",
        ),
        // Q6: directors who directed a movie starring Tom Cruise (5/4).
        q(
            "IMDB-Q6",
            "Q(d) :- Person(d, dn, dy, dc), Directs(m, d), Movie(m, t, y), \
             CastIn(m, tc), Person(tc, 'Tom Cruise', ty, tcc)",
        ),
        // Q7: actors in at least two action movies (7/6).
        q(
            "IMDB-Q7",
            "Q(a) :- Person(a, an, ay, ac), CastIn(m1, a), Genre(m1, 'Action'), \
             Movie(m1, t1, y1), CastIn(m2, a), Genre(m2, 'Action'), Movie(m2, t2, y2)",
        ),
    ]
}

/// A seeded RNG consistent with a config, for auxiliary draws.
pub fn rng_for(cfg: &ImdbConfig) -> StdRng {
    StdRng::seed_from_u64(cfg.seed ^ 0x6a09_e667_f3bc_c909)
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::{eval_cq_limited, EvalLimits};

    #[test]
    fn generator_is_deterministic() {
        let cfg = ImdbConfig::default();
        let (db1, rels) = generate(&cfg);
        let (db2, _) = generate(&cfg);
        assert_eq!(db1.tuples(rels.cast), db2.tuples(rels.cast));
    }

    #[test]
    fn anchors_exist() {
        let (db, rels) = generate(&ImdbConfig::default());
        let people = db.tuples(rels.person);
        let names: Vec<&str> = people.iter().filter_map(|t| t[1].as_str()).collect();
        assert!(names.contains(&"Kevin Bacon"));
        assert!(names.contains(&"Tom Cruise"));
    }

    #[test]
    fn queries_match_table6_shapes() {
        let (db, _) = generate(&ImdbConfig::default());
        let expected = [
            ("IMDB-Q1", 3, 2),
            ("IMDB-Q2", 6, 5),
            ("IMDB-Q3", 5, 4),
            ("IMDB-Q4", 7, 6),
            ("IMDB-Q5", 4, 3),
            ("IMDB-Q6", 5, 4),
            ("IMDB-Q7", 7, 6),
        ];
        for (w, (name, atoms, joins)) in imdb_queries(db.schema()).iter().zip(expected) {
            assert_eq!(w.name, name);
            assert_eq!(w.query.body.len(), atoms, "{name}");
            assert_eq!(w.query.num_joins(), joins, "{name}");
            assert!(w.query.is_connected(), "{name}");
        }
    }

    #[test]
    fn queries_produce_output_rows() {
        let (db, _) = generate(&ImdbConfig::default());
        for w in imdb_queries(db.schema()) {
            let out = eval_cq_limited(
                &db,
                &w.query,
                EvalLimits {
                    max_outputs: 2,
                    max_derivations: 500_000,
                },
            );
            assert!(
                out.len() >= 2,
                "{} produced {} rows; need >= 2",
                w.name,
                out.len()
            );
        }
    }

    #[test]
    fn ontology_tree_covers_all_annotations() {
        let (mut db, rels) = generate(&ImdbConfig {
            num_people: 50,
            num_movies: 40,
            cast_per_movie: 3,
            seed: 5,
        });
        let total = db.len();
        let tree = imdb_tree(&mut db, &rels);
        assert_eq!(tree.num_leaves(), total);
        assert!(tree.compatible_with(&db));
        // Leaves sit at depth 4 (category/range/year/leaf) or 3 (genres).
        for &leaf in tree.leaves() {
            let node = tree.node_by_label(leaf).unwrap();
            assert!(tree.depth(node) >= 3 && tree.depth(node) <= 4);
        }
    }
}
