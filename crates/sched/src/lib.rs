//! Loom-style cooperative model checker for the provabs workspace.
//!
//! The concurrency seams of the engine — `SessionRegistry` publication,
//! `PlanCache` / `PrivacyCache` retirement fences, the sharded maps in
//! `core`, `provabsd` admission — are built on the shims in [`sync`] and
//! [`thread`]. In production those shims cost one relaxed atomic load and
//! delegate straight to `std`. Under [`explore`], every acquire / release /
//! load / store becomes a *scheduling point*: virtual threads run one at a
//! time, a DFS driver enumerates every order in which the points can be
//! interleaved (reduced by sleep sets, optionally bounded by preemptions),
//! and any panic in any schedule is reported as a [`Violation`] carrying a
//! replayable [`Schedule`].
//!
//! The model is *sequentially consistent*: instrumented atomics execute with
//! `SeqCst` regardless of the ordering the caller passed, so the checker
//! enumerates thread interleavings, not weak-memory reorderings. Scenario
//! closures must be deterministic functions of the schedule; under that
//! contract schedule counts are bit-identical across machines and are gated
//! fail-closed by `bench_gate --bench sched` (BENCH_10.json).
//!
//! # Example: catching a lost update
//!
//! ```
//! use provabs_sched as sched;
//! use sched::sync::atomic::{AtomicU64, Ordering};
//! use sched::sync::Arc;
//!
//! // A racy increment: load + store instead of fetch_add. Some schedule
//! // interleaves the two and loses an update.
//! let outcome = sched::explore(|| {
//!     let counter = Arc::new(AtomicU64::labeled("counter", 0));
//!     let c2 = Arc::clone(&counter);
//!     let t = sched::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     let v = counter.load(Ordering::SeqCst);
//!     counter.store(v + 1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
//! });
//!
//! // The sweep catches the bug and hands back a replayable schedule.
//! let violation = outcome.violation.expect("lost update must be caught");
//! let seed = violation.schedule.seed();
//! let again = sched::replay(
//!     &sched::Schedule::from_seed(&seed).unwrap(),
//!     || {
//!         let counter = Arc::new(AtomicU64::labeled("counter", 0));
//!         let c2 = Arc::clone(&counter);
//!         let t = sched::thread::spawn(move || {
//!             c2.fetch_add(1, Ordering::SeqCst);
//!         });
//!         let v = counter.load(Ordering::SeqCst);
//!         counter.store(v + 1, Ordering::SeqCst);
//!         t.join().unwrap();
//!         assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
//!     },
//! );
//! // Byte-identical reproduction: same trace, same failure.
//! assert_eq!(again.trace, violation.trace);
//! assert_eq!(again.message.as_deref(), Some(violation.message.as_str()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod runtime;
pub mod sync;
pub mod thread;

pub use explore::{explore, explore_with, replay, Config, Outcome, Replay, Schedule, Violation};
pub use runtime::TraceEntry;
