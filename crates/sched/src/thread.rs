//! Virtual-thread spawn/join mirroring `std::thread`.
//!
//! Inside a model-checked execution, [`spawn`] creates a *virtual* thread:
//! it runs on a real OS thread but only makes progress when the schedule
//! explorer hands it the run token, and [`JoinHandle::join`] is itself a
//! scheduling point (enabled once the target finished). Outside a model both
//! delegate to `std::thread` unchanged.

use crate::runtime::{self, Execution, Op};
use std::fmt;
use std::sync::{Arc, Mutex as StdMutex};

/// Spawns a thread: virtual when called from inside a model-checked
/// execution, a plain `std::thread` otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match runtime::current() {
        Some(vt) => {
            let (tid, out) = runtime::spawn_thread(&vt.exec, f);
            JoinHandle {
                inner: Inner::Virtual {
                    exec: vt.exec,
                    tid,
                    out,
                },
            }
        }
        None => JoinHandle {
            inner: Inner::Native(std::thread::spawn(f)),
        },
    }
}

/// Yields: a scheduling point when modeled, `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    if runtime::current().is_some() {
        runtime::schedule_point(Op::Yield);
    } else {
        std::thread::yield_now();
    }
}

/// Handle to a spawned (virtual or native) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Native(std::thread::JoinHandle<T>),
    Virtual {
        exec: Arc<Execution>,
        tid: usize,
        out: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Joining a virtual thread is a scheduling point that only becomes
    /// enabled once the target finished; a panicking virtual thread is a
    /// model violation and abandons the whole execution instead of
    /// returning `Err`, so the virtual arm always yields `Ok`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Native(h) => h.join(),
            Inner::Virtual { exec, tid, out } => {
                let _ = &exec;
                runtime::schedule_point(Op::Join(tid));
                let value = out
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined virtual thread stored no result");
                Ok(value)
            }
        }
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Inner::Native(_) => f.write_str("JoinHandle(native)"),
            Inner::Virtual { tid, .. } => write!(f, "JoinHandle(v{tid})"),
        }
    }
}
