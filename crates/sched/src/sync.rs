//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each shim wraps the real `std` primitive plus a per-execution
//! registration slot. Outside a model-checked execution every operation is a
//! single relaxed load away from the `std` fast path; inside one, every
//! acquire / load / store / read-modify-write first parks at a scheduling
//! point so the explorer in [`crate::explore`] controls the interleaving.
//!
//! The atomic shims execute with `SeqCst` while modeled: the checker
//! enumerates *schedules* under sequential consistency, not weak-memory
//! reorderings (see ARCHITECTURE.md §15 for the exhaustiveness bounds).
//!
//! Error handling mirrors `std` closely enough for idiomatic call sites:
//! `lock()` / `read()` / `write()` return `Result<Guard, Poisoned>`, so
//! `.lock().expect("...")` and `if let Ok(g) = ...` compile unchanged.

use crate::runtime::{self, Kind, ObjCell, Op};
use std::fmt;
use std::ops::{Deref, DerefMut};

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

/// Returned when the underlying `std` primitive was poisoned by a panicking
/// holder. Mirrors `std::sync::PoisonError` for `.expect(..)`-style callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned;

impl fmt::Display for Poisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("poisoned lock: holder panicked")
    }
}

impl std::error::Error for Poisoned {}

/// A mutual-exclusion lock whose acquires are scheduling points while a
/// model-checked execution is active, and plain `std::sync::Mutex` acquires
/// otherwise.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    cell: ObjCell,
    label: &'static str,
}

impl<T> Mutex<T> {
    /// Creates an unlabeled mutex (reported as `"mutex"` in traces).
    pub fn new(value: T) -> Self {
        Self::labeled("mutex", value)
    }

    /// Creates a mutex whose trace / lock-order label is `label`. Labels are
    /// the stable identity used for cross-schedule lock-order auditing.
    pub fn labeled(label: &'static str, value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            cell: ObjCell::new(),
            label,
        }
    }

    /// Acquires the lock, parking at a scheduling point first when modeled.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, Poisoned> {
        if let Some(vt) = runtime::current() {
            let id = vt.exec.object_id(&self.cell, self.label, Kind::Mutex);
            runtime::schedule_point(Op::MutexLock(id));
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: g,
                    ctl: Some((vt, id)),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    drop(p);
                    vt.exec.release_mutex(id, vt.tid);
                    Err(Poisoned)
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    panic!("scheduler invariant violated: mutex held when acquire was scheduled")
                }
            }
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: g,
                    ctl: None,
                }),
                Err(_) => Err(Poisoned),
            }
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> Result<T, Poisoned> {
        self.inner.into_inner().map_err(|_| Poisoned)
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> Result<&mut T, Poisoned> {
        self.inner.get_mut().map_err(|_| Poisoned)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]; releases the scheduler bookkeeping and
/// the real lock on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    ctl: Option<(runtime::VThread, u32)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((vt, id)) = self.ctl.take() {
            vt.exec.release_mutex(id, vt.tid);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock whose acquires are scheduling points while a
/// model-checked execution is active.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    cell: ObjCell,
    label: &'static str,
}

impl<T> RwLock<T> {
    /// Creates an unlabeled rwlock (reported as `"rwlock"` in traces).
    pub fn new(value: T) -> Self {
        Self::labeled("rwlock", value)
    }

    /// Creates an rwlock whose trace / lock-order label is `label`.
    pub fn labeled(label: &'static str, value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
            cell: ObjCell::new(),
            label,
        }
    }

    /// Acquires shared access, parking at a scheduling point first when
    /// modeled.
    pub fn read(&self) -> Result<RwLockReadGuard<'_, T>, Poisoned> {
        if let Some(vt) = runtime::current() {
            let id = vt.exec.object_id(&self.cell, self.label, Kind::Rw);
            runtime::schedule_point(Op::RwRead(id));
            match self.inner.try_read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: g,
                    ctl: Some((vt, id)),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    drop(p);
                    vt.exec.release_read(id, vt.tid);
                    Err(Poisoned)
                }
                Err(std::sync::TryLockError::WouldBlock) => panic!(
                    "scheduler invariant violated: rwlock writer held when read was scheduled"
                ),
            }
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: g,
                    ctl: None,
                }),
                Err(_) => Err(Poisoned),
            }
        }
    }

    /// Acquires exclusive access, parking at a scheduling point first when
    /// modeled.
    pub fn write(&self) -> Result<RwLockWriteGuard<'_, T>, Poisoned> {
        if let Some(vt) = runtime::current() {
            let id = vt.exec.object_id(&self.cell, self.label, Kind::Rw);
            runtime::schedule_point(Op::RwWrite(id));
            match self.inner.try_write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: g,
                    ctl: Some((vt, id)),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    drop(p);
                    vt.exec.release_write(id, vt.tid);
                    Err(Poisoned)
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    panic!("scheduler invariant violated: rwlock held when write was scheduled")
                }
            }
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: g,
                    ctl: None,
                }),
                Err(_) => Err(Poisoned),
            }
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> Result<T, Poisoned> {
        self.inner.into_inner().map_err(|_| Poisoned)
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> Result<&mut T, Poisoned> {
        self.inner.get_mut().map_err(|_| Poisoned)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    ctl: Option<(runtime::VThread, u32)>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((vt, id)) = self.ctl.take() {
            vt.exec.release_read(id, vt.tid);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    ctl: Option<(runtime::VThread, u32)>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((vt, id)) = self.ctl.take() {
            vt.exec.release_write(id, vt.tid);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Instrumented atomics mirroring `std::sync::atomic`.
///
/// While modeled, every access parks at a scheduling point and then executes
/// with `SeqCst`; outside a model the caller's ordering is used verbatim.
pub mod atomic {
    use super::{Kind, ObjCell, Op};
    use crate::runtime;
    use std::fmt;

    pub use std::sync::atomic::Ordering;

    macro_rules! int_atomic {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$meta])*
            pub struct $name {
                inner: $std,
                cell: ObjCell,
                label: &'static str,
            }

            impl $name {
                /// Creates an unlabeled atomic (reported as `"atomic"`).
                pub fn new(value: $prim) -> Self {
                    Self::labeled("atomic", value)
                }

                /// Creates an atomic whose trace label is `label`.
                pub fn labeled(label: &'static str, value: $prim) -> Self {
                    Self {
                        inner: <$std>::new(value),
                        cell: ObjCell::new(),
                        label,
                    }
                }

                /// Parks at a scheduling point when modeled; returns the
                /// effective memory ordering for the underlying op.
                fn trap(&self, mk: fn(u32) -> Op, order: Ordering) -> Ordering {
                    match runtime::current() {
                        Some(vt) => {
                            let id = vt.exec.object_id(&self.cell, self.label, Kind::Atomic);
                            runtime::schedule_point(mk(id));
                            Ordering::SeqCst
                        }
                        None => order,
                    }
                }

                /// Atomic load (scheduling point when modeled).
                pub fn load(&self, order: Ordering) -> $prim {
                    let o = self.trap(Op::AtomicLoad, order);
                    self.inner.load(o)
                }

                /// Atomic store (scheduling point when modeled).
                pub fn store(&self, value: $prim, order: Ordering) {
                    let o = self.trap(Op::AtomicStore, order);
                    self.inner.store(value, o)
                }

                /// Atomic swap (scheduling point when modeled).
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    let o = self.trap(Op::AtomicRmw, order);
                    self.inner.swap(value, o)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    let o = self.trap(Op::AtomicRmw, order);
                    self.inner.fetch_add(value, o)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    let o = self.trap(Op::AtomicRmw, order);
                    self.inner.fetch_sub(value, o)
                }

                /// Atomic maximum, returning the previous value.
                pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                    let o = self.trap(Op::AtomicRmw, order);
                    self.inner.fetch_max(value, o)
                }

                /// Atomic minimum, returning the previous value.
                pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                    let o = self.trap(Op::AtomicRmw, order);
                    self.inner.fetch_min(value, o)
                }

                /// Atomic compare-and-exchange (one scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match runtime::current() {
                        Some(vt) => {
                            let id = vt.exec.object_id(&self.cell, self.label, Kind::Atomic);
                            runtime::schedule_point(Op::AtomicRmw(id));
                            self.inner
                                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                        }
                        None => self.inner.compare_exchange(current, new, success, failure),
                    }
                }

                /// Non-atomic read through `&mut self`.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    fmt::Debug::fmt(&self.inner, f)
                }
            }

            impl From<$prim> for $name {
                fn from(value: $prim) -> Self {
                    Self::new(value)
                }
            }
        };
    }

    int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    int_atomic!(
        /// Instrumented `std::sync::atomic::AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    /// Instrumented `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
        cell: ObjCell,
        label: &'static str,
    }

    impl AtomicBool {
        /// Creates an unlabeled atomic flag (reported as `"atomic"`).
        pub fn new(value: bool) -> Self {
            Self::labeled("atomic", value)
        }

        /// Creates an atomic flag whose trace label is `label`.
        pub fn labeled(label: &'static str, value: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(value),
                cell: ObjCell::new(),
                label,
            }
        }

        fn trap(&self, mk: fn(u32) -> Op, order: Ordering) -> Ordering {
            match runtime::current() {
                Some(vt) => {
                    let id = vt.exec.object_id(&self.cell, self.label, Kind::Atomic);
                    runtime::schedule_point(mk(id));
                    Ordering::SeqCst
                }
                None => order,
            }
        }

        /// Atomic load (scheduling point when modeled).
        pub fn load(&self, order: Ordering) -> bool {
            let o = self.trap(Op::AtomicLoad, order);
            self.inner.load(o)
        }

        /// Atomic store (scheduling point when modeled).
        pub fn store(&self, value: bool, order: Ordering) {
            let o = self.trap(Op::AtomicStore, order);
            self.inner.store(value, o)
        }

        /// Atomic swap (scheduling point when modeled).
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            let o = self.trap(Op::AtomicRmw, order);
            self.inner.swap(value, o)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }
}
