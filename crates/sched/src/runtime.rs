//! Execution-side machinery of the cooperative scheduler.
//!
//! A *model-checked execution* runs each virtual thread on a real OS thread,
//! but hands out a single run token: exactly one virtual thread makes
//! progress at any instant, and it only crosses an instrumented operation
//! (lock acquire, atomic access, yield, join) after the driver in
//! [`crate::explore`] has chosen it at that *scheduling point*. Everything
//! between two points runs uninterrupted, which is sound because virtual
//! threads may only interact through the instrumented shims in
//! [`crate::sync`].
//!
//! When no execution is active (the common production case) the shims check
//! one relaxed global counter and delegate straight to `std` — the swap
//! layer is a runtime no-op rather than a `cfg` fork, so the exact same
//! binary serves tests, benches, and the model checker.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Number of live model-checked executions in this process. Zero means every
/// shim is in passthrough mode and delegates straight to `std`.
static ACTIVE_EXECUTIONS: AtomicUsize = AtomicUsize::new(0);

/// Monotone generation counter, so [`ObjCell`]s can lazily re-register
/// themselves once per execution without any global object table.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<VThread>> = const { RefCell::new(None) };
}

/// Fast path for the shims: one relaxed load decides passthrough mode.
#[inline]
pub(crate) fn model_may_be_active() -> bool {
    ACTIVE_EXECUTIONS.load(Ordering::Relaxed) != 0
}

/// The virtual-thread identity of the calling OS thread, if it belongs to a
/// live model-checked execution. OS threads of *other* concurrently running
/// tests (or production code racing a test in the same process) see `None`
/// and stay on the passthrough path.
#[inline]
pub(crate) fn current() -> Option<VThread> {
    if !model_may_be_active() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Identity of one virtual thread inside one execution.
#[derive(Clone)]
pub(crate) struct VThread {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

/// Sentinel panic payload used to unwind virtual threads of an abandoned
/// execution. `resume_unwind` with this payload does not invoke the panic
/// hook, so draining thousands of schedules stays silent.
pub(crate) struct Abandon;

/// One instrumented operation, reported by a virtual thread at a scheduling
/// point. Object ids are per-execution (assigned at first access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// First point of every virtual thread, before any user code runs.
    Start,
    /// An explicit `sched::thread::yield_now`.
    Yield,
    /// Acquire of an instrumented mutex.
    MutexLock(u32),
    /// Shared acquire of an instrumented rwlock.
    RwRead(u32),
    /// Exclusive acquire of an instrumented rwlock.
    RwWrite(u32),
    /// Atomic load.
    AtomicLoad(u32),
    /// Atomic store.
    AtomicStore(u32),
    /// Atomic read-modify-write (fetch_add, swap, compare_exchange, ...).
    AtomicRmw(u32),
    /// Join on the virtual thread with this tid.
    Join(usize),
}

/// One scheduling decision, as recorded in an execution trace: which thread
/// ran and the operation it crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual-thread id (0 is the root closure).
    pub tid: usize,
    /// Human-readable operation, e.g. `"lock plancache.shard#3"`.
    pub op: String,
}

/// What kind of instrumented object an [`ObjCell`] registers as.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Kind {
    Mutex,
    Rw,
    Atomic,
}

/// Scheduler-side state of one instrumented object.
#[derive(Debug)]
pub(crate) enum ObjState {
    Mutex {
        holder: Option<usize>,
    },
    Rw {
        writer: Option<usize>,
        readers: Vec<usize>,
    },
    Atomic,
}

#[derive(Debug)]
pub(crate) struct ObjRec {
    pub(crate) label: &'static str,
    pub(crate) state: ObjState,
}

/// Per-execution registration slot embedded in every shim object: the
/// generation tag makes re-registration lazy and allocation-free across the
/// thousands of executions one `explore` runs.
#[derive(Debug, Default)]
pub(crate) struct ObjCell {
    slot: StdMutex<(u64, u32)>,
}

impl ObjCell {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Spawned, but its OS thread has not yet parked at its `Start` point.
    Starting,
    /// Holds the run token and is executing user code.
    Running,
    /// Parked at a scheduling point with a pending op.
    Parked,
    /// Returned (or unwound); will never run again.
    Finished,
}

pub(crate) struct ThreadRec {
    pub(crate) status: Status,
    pub(crate) pending: Option<Op>,
    /// Lock objects currently held (for lock-order edge recording).
    pub(crate) held: Vec<u32>,
}

/// Shared mutable state of one execution, guarded by `Execution::state`.
pub(crate) struct SchedState {
    pub(crate) threads: Vec<ThreadRec>,
    pub(crate) objects: Vec<ObjRec>,
    pub(crate) abandoned: bool,
    pub(crate) violation: Option<String>,
    pub(crate) trace: Vec<TraceEntry>,
    /// label-level "acquired while holding" edges observed this execution.
    pub(crate) lock_edges: BTreeSet<(&'static str, &'static str)>,
    pub(crate) os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl SchedState {
    /// Whether `op` can execute now without blocking.
    pub(crate) fn op_enabled(&self, op: Op) -> bool {
        match op {
            Op::Start | Op::Yield | Op::AtomicLoad(_) | Op::AtomicStore(_) | Op::AtomicRmw(_) => {
                true
            }
            Op::MutexLock(o) => matches!(
                self.objects[o as usize].state,
                ObjState::Mutex { holder: None }
            ),
            Op::RwRead(o) => {
                matches!(
                    self.objects[o as usize].state,
                    ObjState::Rw { writer: None, .. }
                )
            }
            Op::RwWrite(o) => matches!(
                &self.objects[o as usize].state,
                ObjState::Rw { writer: None, readers } if readers.is_empty()
            ),
            Op::Join(t) => self.threads[t].status == Status::Finished,
        }
    }

    /// Applies the pending op of `tid` (bookkeeping + trace) and hands it the
    /// run token. Caller must have checked the op is enabled.
    pub(crate) fn apply_decision(&mut self, tid: usize) {
        let op = self.threads[tid]
            .pending
            .take()
            .expect("decided thread has no pending op");
        match op {
            Op::MutexLock(o) => {
                self.record_lock_edges(tid, o);
                match &mut self.objects[o as usize].state {
                    ObjState::Mutex { holder } => {
                        debug_assert!(holder.is_none());
                        *holder = Some(tid);
                    }
                    other => panic!("mutex op on {other:?}"),
                }
                self.threads[tid].held.push(o);
            }
            Op::RwRead(o) => {
                self.record_lock_edges(tid, o);
                match &mut self.objects[o as usize].state {
                    ObjState::Rw { writer, readers } => {
                        debug_assert!(writer.is_none());
                        readers.push(tid);
                    }
                    other => panic!("rwlock op on {other:?}"),
                }
                self.threads[tid].held.push(o);
            }
            Op::RwWrite(o) => {
                self.record_lock_edges(tid, o);
                match &mut self.objects[o as usize].state {
                    ObjState::Rw { writer, readers } => {
                        debug_assert!(writer.is_none() && readers.is_empty());
                        *writer = Some(tid);
                    }
                    other => panic!("rwlock op on {other:?}"),
                }
                self.threads[tid].held.push(o);
            }
            Op::Start
            | Op::Yield
            | Op::AtomicLoad(_)
            | Op::AtomicStore(_)
            | Op::AtomicRmw(_)
            | Op::Join(_) => {}
        }
        let entry = TraceEntry {
            tid,
            op: self.describe(op),
        };
        self.trace.push(entry);
        self.threads[tid].status = Status::Running;
    }

    fn record_lock_edges(&mut self, tid: usize, acquiring: u32) {
        let to = self.objects[acquiring as usize].label;
        let held: Vec<&'static str> = self.threads[tid]
            .held
            .iter()
            .map(|&h| self.objects[h as usize].label)
            .collect();
        for from in held {
            self.lock_edges.insert((from, to));
        }
    }

    fn describe(&self, op: Op) -> String {
        let obj = |o: u32| format!("{}#{o}", self.objects[o as usize].label);
        match op {
            Op::Start => "start".into(),
            Op::Yield => "yield".into(),
            Op::MutexLock(o) => format!("lock {}", obj(o)),
            Op::RwRead(o) => format!("read {}", obj(o)),
            Op::RwWrite(o) => format!("write {}", obj(o)),
            Op::AtomicLoad(o) => format!("load {}", obj(o)),
            Op::AtomicStore(o) => format!("store {}", obj(o)),
            Op::AtomicRmw(o) => format!("rmw {}", obj(o)),
            Op::Join(t) => format!("join v{t}"),
        }
    }
}

/// One model-checked execution: a set of virtual threads, their instrumented
/// objects, and the condition variable the run token is passed over.
pub(crate) struct Execution {
    pub(crate) generation: u64,
    pub(crate) state: StdMutex<SchedState>,
    pub(crate) cv: Condvar,
}

impl Execution {
    pub(crate) fn new() -> Arc<Self> {
        ACTIVE_EXECUTIONS.fetch_add(1, Ordering::SeqCst);
        Arc::new(Self {
            generation: NEXT_GENERATION.fetch_add(1, Ordering::SeqCst),
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                objects: Vec::new(),
                abandoned: false,
                violation: None,
                trace: Vec::new(),
                lock_edges: BTreeSet::new(),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers `cell` for this execution (idempotent), returning its
    /// per-execution object id. Ids are assigned in first-access order, so
    /// deterministic programs get deterministic ids under a fixed schedule.
    pub(crate) fn object_id(&self, cell: &ObjCell, label: &'static str, kind: Kind) -> u32 {
        let mut slot = cell.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.0 == self.generation {
            return slot.1;
        }
        let mut st = self.state.lock().unwrap();
        let id = u32::try_from(st.objects.len()).expect("too many instrumented objects");
        let state = match kind {
            Kind::Mutex => ObjState::Mutex { holder: None },
            Kind::Rw => ObjState::Rw {
                writer: None,
                readers: Vec::new(),
            },
            Kind::Atomic => ObjState::Atomic,
        };
        st.objects.push(ObjRec { label, state });
        *slot = (self.generation, id);
        id
    }

    /// Waits until no virtual thread is running or starting, i.e. the
    /// execution is ready for the next scheduling decision.
    pub(crate) fn wait_quiescent(&self) -> std::sync::MutexGuard<'_, SchedState> {
        let mut st = self.state.lock().unwrap();
        while st
            .threads
            .iter()
            .any(|t| matches!(t.status, Status::Running | Status::Starting))
        {
            st = self.cv.wait(st).unwrap();
        }
        st
    }

    /// Abandons the execution: wakes every parked thread so it unwinds, waits
    /// for all of them to finish, and joins the OS threads.
    pub(crate) fn drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.abandoned = true;
        self.cv.notify_all();
        while st.threads.iter().any(|t| t.status != Status::Finished) {
            st = self.cv.wait(st).unwrap();
        }
        let handles = std::mem::take(&mut st.os_handles);
        drop(st);
        for h in handles {
            let _ = h.join();
        }
    }

    pub(crate) fn release_mutex(&self, obj: u32, tid: usize) {
        let mut st = self.state.lock().unwrap();
        if let ObjState::Mutex { holder } = &mut st.objects[obj as usize].state {
            debug_assert_eq!(*holder, Some(tid));
            *holder = None;
        }
        st.threads[tid].held.retain(|&h| h != obj);
    }

    pub(crate) fn release_read(&self, obj: u32, tid: usize) {
        let mut st = self.state.lock().unwrap();
        if let ObjState::Rw { readers, .. } = &mut st.objects[obj as usize].state {
            if let Some(pos) = readers.iter().position(|&r| r == tid) {
                readers.remove(pos);
            }
        }
        st.threads[tid].held.retain(|&h| h != obj);
    }

    pub(crate) fn release_write(&self, obj: u32, tid: usize) {
        let mut st = self.state.lock().unwrap();
        if let ObjState::Rw { writer, .. } = &mut st.objects[obj as usize].state {
            debug_assert_eq!(*writer, Some(tid));
            *writer = None;
        }
        st.threads[tid].held.retain(|&h| h != obj);
    }
}

impl Drop for Execution {
    fn drop(&mut self) {
        ACTIVE_EXECUTIONS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Parks the calling virtual thread at a scheduling point with `op` pending,
/// and returns once the driver hands it the run token. Unwinds (with the
/// silent [`Abandon`] sentinel) if the execution is abandoned.
pub(crate) fn schedule_point(op: Op) {
    let Some(vt) = current() else { return };
    let exec = vt.exec;
    let mut st = exec.state.lock().unwrap();
    if st.abandoned {
        drop(st);
        panic::resume_unwind(Box::new(Abandon));
    }
    {
        let t = &mut st.threads[vt.tid];
        t.pending = Some(op);
        t.status = Status::Parked;
    }
    exec.cv.notify_all();
    loop {
        if st.abandoned {
            drop(st);
            panic::resume_unwind(Box::new(Abandon));
        }
        if st.threads[vt.tid].status == Status::Running {
            return;
        }
        st = exec.cv.wait(st).unwrap();
    }
}

/// Spawns `f` as a new virtual thread of `exec`, returning its tid and the
/// cell its return value will be stored in.
pub(crate) fn spawn_thread<T, F>(exec: &Arc<Execution>, f: F) -> (usize, Arc<StdMutex<Option<T>>>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let out = Arc::new(StdMutex::new(None));
    let mut st = exec.state.lock().unwrap();
    let tid = st.threads.len();
    st.threads.push(ThreadRec {
        status: Status::Starting,
        pending: None,
        held: Vec::new(),
    });
    let exec2 = Arc::clone(exec);
    let out2 = Arc::clone(&out);
    let handle = std::thread::Builder::new()
        .name(format!("sched-v{tid}"))
        .spawn(move || vthread_main(exec2, tid, f, out2))
        .expect("spawn virtual thread");
    st.os_handles.push(handle);
    drop(st);
    (tid, out)
}

/// Installs (once, process-wide) a panic hook that silences panics raised
/// on model-checker vthreads: they are caught by [`vthread_main`] and
/// re-surfaced as [`Violation`](crate::Violation)s with a replayable
/// schedule, so the default hook's backtrace would only spam stderr once
/// per violating schedule. Panics on ordinary threads still reach the
/// previous hook untouched.
pub(crate) fn install_panic_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                prev(info);
            }
        }));
    });
}

fn vthread_main<T, F: FnOnce() -> T>(
    exec: Arc<Execution>,
    tid: usize,
    f: F,
    out: Arc<StdMutex<Option<T>>>,
) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(VThread {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        schedule_point(Op::Start);
        f()
    }));
    let flat = match result {
        Ok(v) => {
            *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            Ok(())
        }
        Err(p) => Err(p),
    };
    let mut st = exec.state.lock().unwrap();
    if let Err(payload) = flat {
        if payload.downcast_ref::<Abandon>().is_none() {
            if st.violation.is_none() {
                st.violation = Some(panic_message(payload.as_ref()));
            }
            st.abandoned = true;
        }
    }
    st.threads[tid].status = Status::Finished;
    drop(st);
    exec.cv.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
