//! Exhaustive schedule enumeration: DFS over scheduling decisions with a
//! sleep-set partial-order reduction and an optional preemption bound.
//!
//! Every run spawns fresh virtual threads and replays a prescribed prefix of
//! decisions, then extends it depth-first. Two co-enabled operations that
//! touch different objects (or are both pure reads of the same object)
//! commute, so sleep sets prune one of the two interleavings without losing
//! any reachable state; with `preemption_bound: None` the sweep is therefore
//! exhaustive over the sequentially-consistent state space. A finite
//! preemption bound composes with the reduction as a further (heuristic)
//! cut, trading exhaustiveness for depth — `PROVABS_SCHED_BUDGET` raises it
//! in nightly runs (see [`Config::from_env`]).
//!
//! Determinism contract: scenario closures must be deterministic functions
//! of the schedule (no wall clock, no OS randomness, no `RandomState`
//! hashing feeding control flow). Under that contract the explorer visits an
//! identical schedule tree on every machine, so schedule / pruned / decision
//! counts are exact-equality gateable (see `bench_gate --bench sched`).

use crate::runtime::{self, Execution, Op, SchedState, Status, TraceEntry};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Exploration limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Maximum number of preemptions (switches away from a still-enabled
    /// thread) per schedule; `None` sweeps without a bound.
    pub preemption_bound: Option<u32>,
    /// Hard cap on attempted schedules (complete + pruned); exceeding it
    /// stops the sweep with `Outcome::complete == false`. A safety net, not
    /// a tuning knob — sized far above any gated scenario.
    pub max_schedules: u64,
    /// Per-schedule cap on scheduling decisions; exceeding it is reported as
    /// a violation (fail-closed livelock guard).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: Some(2),
            max_schedules: 200_000,
            max_steps: 20_000,
        }
    }
}

impl Config {
    /// An unbounded-preemption config: sleep sets are the only reduction, so
    /// the sweep is exhaustive over the SC state space.
    pub fn unbounded() -> Self {
        Self {
            preemption_bound: None,
            ..Self::default()
        }
    }

    /// The default config scaled by the `PROVABS_SCHED_BUDGET` environment
    /// knob (a small integer, default 1): budget `b` adds `b - 1` to the
    /// preemption bound and multiplies `max_schedules` by `b`. CI's nightly
    /// sweep sets a deeper budget; gated scenarios pin explicit configs and
    /// ignore the knob.
    pub fn from_env() -> Self {
        let budget = std::env::var("PROVABS_SCHED_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&b| b >= 1)
            .unwrap_or(1);
        let base = Self::default();
        Self {
            preemption_bound: base.preemption_bound.map(|p| p + (budget - 1)),
            max_schedules: base.max_schedules.saturating_mul(u64::from(budget)),
            ..base
        }
    }
}

/// A recorded sequence of scheduling decisions (the tid chosen at each
/// point). Serializes to a dot-separated seed string for replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Chosen virtual-thread id per decision, in order.
    pub choices: Vec<u32>,
}

impl Schedule {
    /// Serializes to a seed like `"0.1.1.2.0"` (empty string for an empty
    /// schedule).
    pub fn seed(&self) -> String {
        self.choices
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Parses a seed produced by [`Schedule::seed`]; `None` on malformed
    /// input.
    pub fn from_seed(seed: &str) -> Option<Self> {
        if seed.is_empty() {
            return Some(Self::default());
        }
        let choices = seed
            .split('.')
            .map(|p| p.parse::<u32>().ok())
            .collect::<Option<Vec<u32>>>()?;
        Some(Self { choices })
    }
}

/// A schedule on which a scenario assertion failed (or the model deadlocked
/// / exceeded its step budget).
#[derive(Debug, Clone)]
pub struct Violation {
    /// The full decision sequence that reproduces the failure; feed it to
    /// [`replay`] (possibly via [`Schedule::seed`]) for a byte-identical
    /// re-execution.
    pub schedule: Schedule,
    /// The panic message (or deadlock / budget report).
    pub message: String,
    /// The decision trace of the violating execution.
    pub trace: Vec<TraceEntry>,
    /// How many schedules ran to completion before this one.
    pub schedules_before: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        writeln!(f, "seed: {}", self.schedule.seed())?;
        writeln!(f, "trace ({} decisions):", self.trace.len())?;
        for e in &self.trace {
            writeln!(f, "  v{} {}", e.tid, e.op)?;
        }
        Ok(())
    }
}

/// Result of a sweep.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Schedules run to completion (the violating one, if any, included).
    pub schedules: u64,
    /// Partial schedules cut by the sleep-set reduction or preemption bound.
    pub pruned: u64,
    /// Total scheduling decisions across all runs.
    pub decisions: u64,
    /// True iff the DFS exhausted the (reduced, bounded) schedule tree. A
    /// sweep that stops early — on a violation or on `max_schedules` — is
    /// incomplete.
    pub complete: bool,
    /// The first violation found, if any (the sweep stops on it).
    pub violation: Option<Violation>,
    /// Label-level "acquired B while holding A" edges observed across all
    /// runs, sorted. The global lock-order audit: a cycle here means two
    /// code paths acquire the same labels in opposite orders.
    pub lock_edges: Vec<(String, String)>,
}

impl Outcome {
    /// Panics (with the full violation trace) unless the sweep completed
    /// with no violation. The standard assertion for healthy scenarios.
    pub fn expect_clean(&self) {
        if let Some(v) = &self.violation {
            panic!("schedule sweep found a violation\n{v}");
        }
        assert!(
            self.complete,
            "schedule sweep did not exhaust its tree (hit max_schedules)"
        );
    }

    /// A cycle in the label-level lock-order graph, if one exists: the
    /// labels along the cycle, first repeated at the end. `None` means every
    /// observed acquisition order is consistent with one global hierarchy.
    pub fn lock_cycle(&self) -> Option<Vec<String>> {
        let labels: BTreeSet<&str> = self
            .lock_edges
            .iter()
            .flat_map(|(a, b)| [a.as_str(), b.as_str()])
            .collect();
        let mut color: std::collections::BTreeMap<&str, u8> =
            labels.iter().map(|&l| (l, 0u8)).collect();
        let mut stack: Vec<&str> = Vec::new();
        fn visit<'a>(
            node: &'a str,
            edges: &'a [(String, String)],
            color: &mut std::collections::BTreeMap<&'a str, u8>,
            stack: &mut Vec<&'a str>,
        ) -> Option<Vec<String>> {
            color.insert(node, 1);
            stack.push(node);
            for (a, b) in edges {
                if a == node {
                    match color.get(b.as_str()).copied().unwrap_or(0) {
                        1 => {
                            let start = stack.iter().position(|&s| s == b.as_str()).unwrap_or(0);
                            let mut cycle: Vec<String> =
                                stack[start..].iter().map(|s| s.to_string()).collect();
                            cycle.push(b.clone());
                            return Some(cycle);
                        }
                        0 => {
                            if let Some(c) = visit(b.as_str(), edges, color, stack) {
                                return Some(c);
                            }
                        }
                        _ => {}
                    }
                }
            }
            stack.pop();
            color.insert(node, 2);
            None
        }
        for &l in &labels {
            if color.get(l).copied() == Some(0) {
                if let Some(c) = visit(l, &self.lock_edges, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// Result of replaying one recorded schedule.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The decision trace of the replayed execution.
    pub trace: Vec<TraceEntry>,
    /// The violation (or divergence) message, `None` if the run completed
    /// cleanly.
    pub message: Option<String>,
    /// Scheduling decisions consumed.
    pub decisions: u64,
}

/// Sweeps every schedule of `f` under the default [`Config`].
pub fn explore<F>(f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with(Config::default(), f)
}

/// Sweeps every schedule of `f` under `cfg`. `f` is the body of virtual
/// thread 0; it may [`crate::thread::spawn`] further virtual threads and
/// must construct all shared state itself (each schedule runs a fresh
/// instance).
pub fn explore_with<F>(cfg: Config, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    runtime::install_panic_filter();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut dfs = Dfs { nodes: Vec::new() };
    let mut out = Outcome {
        schedules: 0,
        pruned: 0,
        decisions: 0,
        complete: false,
        violation: None,
        lock_edges: Vec::new(),
    };
    let mut edges: BTreeSet<(&'static str, &'static str)> = BTreeSet::new();
    loop {
        if out.schedules + out.pruned >= cfg.max_schedules {
            out.complete = false;
            break;
        }
        let r = run_one(&f, Mode::Dfs(&mut dfs, &cfg));
        out.decisions += r.choices.len() as u64;
        edges.extend(r.lock_edges.iter().copied());
        match r.end {
            RunEnd::Completed => out.schedules += 1,
            RunEnd::Pruned => out.pruned += 1,
            RunEnd::Violation(message) => {
                let schedules_before = out.schedules;
                out.schedules += 1;
                out.violation = Some(Violation {
                    schedule: Schedule { choices: r.choices },
                    message,
                    trace: r.trace,
                    schedules_before,
                });
                break;
            }
            RunEnd::Diverged(message) => {
                unreachable!("divergence outside replay mode: {message}")
            }
        }
        if !dfs.advance() {
            out.complete = true;
            break;
        }
    }
    out.lock_edges = edges
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    out
}

/// Re-executes `f` under exactly the decisions of `schedule`. With the
/// schedule of a [`Violation`], the replay reproduces the identical trace
/// and the identical failure message, byte for byte.
pub fn replay<F>(schedule: &Schedule, f: F) -> Replay
where
    F: Fn() + Send + Sync + 'static,
{
    runtime::install_panic_filter();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let r = run_one(&f, Mode::Fixed(&schedule.choices));
    Replay {
        decisions: r.choices.len() as u64,
        message: match r.end {
            RunEnd::Violation(m) | RunEnd::Diverged(m) => Some(m),
            RunEnd::Completed | RunEnd::Pruned => None,
        },
        trace: r.trace,
    }
}

// ---------------------------------------------------------------------------
// DFS internals
// ---------------------------------------------------------------------------

/// One node of the schedule tree (one scheduling point along the current
/// prefix). `candidates` and `sleep` are fixed at creation; `ops` is
/// refreshed on every pass so child sleep sets are computed from the live
/// per-execution object ids.
struct Node {
    /// Threads to try at this point, in order (previous thread first, then
    /// ascending tid), already filtered by sleep set and preemption bound.
    candidates: Vec<usize>,
    /// Index into `candidates` currently being explored.
    tried: usize,
    /// Sleep set on entry: threads whose pending op was already explored in
    /// an equivalent interleaving, so running them first here is redundant.
    sleep: Vec<usize>,
    /// Pending op of every parked thread at this point (refreshed per run).
    ops: Vec<(usize, Op)>,
}

struct Dfs {
    nodes: Vec<Node>,
}

impl Dfs {
    /// Advances to the next unexplored branch; false when the tree is
    /// exhausted.
    fn advance(&mut self) -> bool {
        while let Some(n) = self.nodes.last_mut() {
            n.tried += 1;
            if n.tried < n.candidates.len() {
                return true;
            }
            self.nodes.pop();
        }
        false
    }
}

enum Mode<'a> {
    Dfs(&'a mut Dfs, &'a Config),
    Fixed(&'a [u32]),
}

enum RunEnd {
    Completed,
    Pruned,
    Violation(String),
    Diverged(String),
}

struct RunResult {
    end: RunEnd,
    choices: Vec<u32>,
    trace: Vec<TraceEntry>,
    lock_edges: Vec<(&'static str, &'static str)>,
}

/// Two pending ops commute (running them in either order reaches the same
/// state): different objects always do; pure reads of the same object do;
/// start / yield / join have no object effect at all. Lock *releases* are
/// not scheduling points, but a release only ever enables the other op, and
/// a thread cannot release a lock the other could have been holding while
/// both were co-enabled — so merging releases into the preceding segment
/// preserves commutation.
fn independent(a: Op, b: Op) -> bool {
    fn access(op: Op) -> Option<(u32, bool)> {
        match op {
            Op::Start | Op::Yield | Op::Join(_) => None,
            Op::MutexLock(o) | Op::RwWrite(o) | Op::AtomicStore(o) | Op::AtomicRmw(o) => {
                Some((o, true))
            }
            Op::RwRead(o) | Op::AtomicLoad(o) => Some((o, false)),
        }
    }
    match (access(a), access(b)) {
        (Some((oa, wa)), Some((ob, wb))) => oa != ob || (!wa && !wb),
        _ => true,
    }
}

fn run_one(f: &Arc<dyn Fn() + Send + Sync>, mut mode: Mode<'_>) -> RunResult {
    let exec = Execution::new();
    {
        let f = Arc::clone(f);
        runtime::spawn_thread(&exec, move || f());
    }
    let mut choices: Vec<u32> = Vec::new();
    let mut last_running: Option<usize> = None;
    let mut preemptions = 0u32;
    let end = loop {
        let mut st = exec.wait_quiescent();
        if st.abandoned || st.violation.is_some() {
            let msg = st
                .violation
                .clone()
                .unwrap_or_else(|| "execution abandoned".to_string());
            break RunEnd::Violation(msg);
        }
        let parked: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Parked)
            .collect();
        if parked.is_empty() {
            // every thread finished
            break RunEnd::Completed;
        }
        let enabled: Vec<usize> = parked
            .iter()
            .copied()
            .filter(|&t| {
                let op = st.threads[t].pending.expect("parked thread has pending op");
                st.op_enabled(op)
            })
            .collect();
        if enabled.is_empty() {
            let mut desc: Vec<String> = Vec::new();
            for &t in &parked {
                let op = st.threads[t].pending.expect("parked thread has pending op");
                desc.push(format!("v{t} blocked at {op:?}"));
            }
            let msg = format!("deadlock: no enabled thread ({})", desc.join(", "));
            break RunEnd::Violation(msg);
        }
        let depth = choices.len();
        let decision = match &mut mode {
            Mode::Fixed(sched) => {
                if depth >= sched.len() {
                    let msg = format!(
                        "replay diverged: schedule exhausted after {depth} decisions but \
                         threads are still live"
                    );
                    break RunEnd::Diverged(msg);
                }
                let tid = sched[depth] as usize;
                if !enabled.contains(&tid) {
                    let msg = format!("replay diverged: v{tid} not enabled at decision {depth}");
                    break RunEnd::Diverged(msg);
                }
                Some(tid)
            }
            Mode::Dfs(dfs, cfg) => {
                if depth as u64 >= cfg.max_steps {
                    let msg = format!(
                        "schedule exceeded max_steps = {} (possible livelock)",
                        cfg.max_steps
                    );
                    break RunEnd::Violation(msg);
                }
                dfs_decide(dfs, cfg, depth, &st, &enabled, last_running, preemptions)
            }
        };
        let Some(tid) = decision else {
            // sleep-set or preemption-bound blocked: this partial schedule
            // is redundant (or out of budget); abandon it quietly.
            break RunEnd::Pruned;
        };
        if let Some(lr) = last_running {
            if tid != lr && enabled.contains(&lr) {
                preemptions += 1;
            }
        }
        st.apply_decision(tid);
        choices.push(u32::try_from(tid).expect("tid fits in u32"));
        last_running = Some(tid);
        drop(st);
        exec.cv.notify_all();
    };
    // Unconditionally drain: abandons any still-parked threads (no-op after
    // a completed run) and joins every OS thread of this execution.
    exec.drain();
    let st = exec.state.lock().unwrap();
    RunResult {
        end,
        choices,
        trace: st.trace.clone(),
        lock_edges: st.lock_edges.iter().copied().collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_decide(
    dfs: &mut Dfs,
    cfg: &Config,
    depth: usize,
    st: &SchedState,
    enabled: &[usize],
    last_running: Option<usize>,
    preemptions: u32,
) -> Option<usize> {
    let pend: Vec<(usize, Op)> = (0..st.threads.len())
        .filter(|&t| st.threads[t].status == Status::Parked)
        .map(|t| {
            (
                t,
                st.threads[t].pending.expect("parked thread has pending op"),
            )
        })
        .collect();
    if depth < dfs.nodes.len() {
        // prescribed prefix: replay the branch currently under exploration
        let node = &mut dfs.nodes[depth];
        node.ops = pend;
        let tid = node.candidates[node.tried];
        assert!(
            enabled.contains(&tid),
            "scenario nondeterminism: prescribed thread v{tid} not enabled at depth {depth} \
             (scenario closures must be deterministic functions of the schedule)"
        );
        Some(tid)
    } else {
        // new frontier node: compute sleep set from the parent's decision
        let sleep: Vec<usize> = match dfs.nodes.last() {
            None => Vec::new(),
            Some(parent) => {
                let chosen = parent.candidates[parent.tried];
                let chosen_op = parent
                    .ops
                    .iter()
                    .find(|(t, _)| *t == chosen)
                    .map(|(_, op)| *op)
                    .expect("chosen thread was parked at parent");
                let mut s: Vec<usize> = Vec::new();
                for &u in parent
                    .sleep
                    .iter()
                    .chain(parent.candidates[..parent.tried].iter())
                {
                    if u == chosen || s.contains(&u) {
                        continue;
                    }
                    if let Some((_, op_u)) = parent.ops.iter().find(|(t, _)| *t == u) {
                        if independent(*op_u, chosen_op) {
                            s.push(u);
                        }
                    }
                }
                s
            }
        };
        let allowed: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|t| !sleep.contains(t))
            .collect();
        let can_continue = last_running.is_some_and(|lr| enabled.contains(&lr));
        let at_bound = cfg.preemption_bound.is_some_and(|b| preemptions >= b);
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(lr) = last_running {
            if can_continue && allowed.contains(&lr) {
                candidates.push(lr);
            }
        }
        for &t in &allowed {
            if Some(t) == last_running {
                continue;
            }
            if can_continue && at_bound {
                // switching away from a still-enabled thread would exceed
                // the preemption bound
                continue;
            }
            candidates.push(t);
        }
        dfs.nodes.push(Node {
            candidates,
            tried: 0,
            sleep,
            ops: pend,
        });
        dfs.nodes.last().and_then(|n| n.candidates.first()).copied()
    }
}
