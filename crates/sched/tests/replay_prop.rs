//! Property: any failing schedule serializes to a seed that replays the
//! identical interleaving and counters, byte for byte.
//!
//! Random 2–3-thread programs mix atomic increments, deliberately racy
//! load/store increments, mutex-guarded increments, and yields. Whenever the
//! sweep finds a violation, its schedule must round-trip through the string
//! seed and reproduce the exact decision trace and failure message; programs
//! with no racy op must never violate.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_sched as sched;
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Arc, Mutex};
use sched::Config;

const OBJS: usize = 2;
const OBJ_LABELS: [&str; OBJS] = ["obj.0", "obj.1"];
const LOCK_LABELS: [&str; OBJS] = ["lock.0", "lock.1"];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum POp {
    /// `fetch_add(1)` — always safe.
    Atomic(usize),
    /// `load` then `store(v + 1)` — loses updates under contention.
    Racy(usize),
    /// `*lock() += 1` — always safe.
    Locked(usize),
    /// An explicit scheduling point with no effect.
    Yield,
}

/// Draws a random 2–3-thread program, 1–3 ops per thread.
fn gen_program(rng: &mut TestRng) -> Vec<Vec<POp>> {
    let threads = 2 + (rng.next_u64() % 2) as usize;
    (0..threads)
        .map(|_| {
            let len = 1 + (rng.next_u64() % 3) as usize;
            (0..len)
                .map(|_| {
                    let obj = (rng.next_u64() % OBJS as u64) as usize;
                    match rng.next_u64() % 4 {
                        0 => POp::Atomic(obj),
                        1 => POp::Racy(obj),
                        2 => POp::Locked(obj),
                        _ => POp::Yield,
                    }
                })
                .collect()
        })
        .collect()
}

fn exec_ops(ops: &[POp], atomics: &[Arc<AtomicU64>], locks: &[Arc<Mutex<u64>>]) {
    for op in ops {
        match *op {
            POp::Atomic(o) => {
                atomics[o].fetch_add(1, Ordering::SeqCst);
            }
            POp::Racy(o) => {
                let v = atomics[o].load(Ordering::SeqCst);
                atomics[o].store(v + 1, Ordering::SeqCst);
            }
            POp::Locked(o) => {
                *locks[o].lock().expect("program lock") += 1;
            }
            POp::Yield => sched::thread::yield_now(),
        }
    }
}

/// Runs `prog` (thread 0 = root) and asserts every increment landed — the
/// assertion a lost update violates.
fn run_program(prog: &[Vec<POp>]) {
    let atomics: Vec<Arc<AtomicU64>> = (0..OBJS)
        .map(|i| Arc::new(AtomicU64::labeled(OBJ_LABELS[i], 0)))
        .collect();
    let locks: Vec<Arc<Mutex<u64>>> = (0..OBJS)
        .map(|i| Arc::new(Mutex::labeled(LOCK_LABELS[i], 0u64)))
        .collect();
    let handles: Vec<_> = prog[1..]
        .iter()
        .map(|ops| {
            let ops = ops.clone();
            let atomics = atomics.clone();
            let locks = locks.clone();
            sched::thread::spawn(move || exec_ops(&ops, &atomics, &locks))
        })
        .collect();
    exec_ops(&prog[0], &atomics, &locks);
    for h in handles {
        h.join().unwrap();
    }
    let mut want_atomic = [0u64; OBJS];
    let mut want_locked = [0u64; OBJS];
    for ops in prog {
        for op in ops {
            match *op {
                POp::Atomic(o) | POp::Racy(o) => want_atomic[o] += 1,
                POp::Locked(o) => want_locked[o] += 1,
                POp::Yield => {}
            }
        }
    }
    for o in 0..OBJS {
        assert_eq!(
            atomics[o].load(Ordering::SeqCst),
            want_atomic[o],
            "lost update on {}",
            OBJ_LABELS[o]
        );
        assert_eq!(
            *locks[o].lock().expect("program lock"),
            want_locked[o],
            "lost update on {}",
            LOCK_LABELS[o]
        );
    }
}

fn has_contended_racy(prog: &[Vec<POp>]) -> bool {
    // A racy increment can only lose an update if another thread also
    // increments the same object.
    prog.iter().enumerate().any(|(t, ops)| {
        ops.iter().any(|op| match *op {
            POp::Racy(o) => prog.iter().enumerate().any(|(u, other)| {
                u != t
                    && other
                        .iter()
                        .any(|p| matches!(*p, POp::Racy(x) | POp::Atomic(x) if x == o))
            }),
            _ => false,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn failing_schedules_replay_byte_for_byte(seed in 0u64..1_000_000) {
        let mut rng = TestRng::for_case(seed);
        let prog = gen_program(&mut rng);
        let body = {
            let p = prog.clone();
            move || run_program(&p)
        };
        let outcome = sched::explore_with(Config::default(), body.clone());
        match &outcome.violation {
            None => {
                prop_assert!(outcome.complete, "clean sweep must be complete");
            }
            Some(v) => {
                // Only a contended racy increment can fail.
                prop_assert!(
                    has_contended_racy(&prog),
                    "safe program violated: {prog:?}\n{v}"
                );
                // Seed string round-trips.
                let seed_str = v.schedule.seed();
                let parsed = sched::Schedule::from_seed(&seed_str)
                    .expect("seed must parse");
                prop_assert_eq!(&parsed, &v.schedule);
                // Replaying the seed reproduces the identical interleaving
                // and the identical failure, byte for byte — twice.
                for _ in 0..2 {
                    let replayed = sched::replay(&parsed, body.clone());
                    prop_assert_eq!(&replayed.trace, &v.trace);
                    prop_assert_eq!(
                        replayed.message.as_deref(),
                        Some(v.message.as_str())
                    );
                    prop_assert_eq!(
                        replayed.decisions,
                        v.schedule.choices.len() as u64
                    );
                }
            }
        }
    }
}
