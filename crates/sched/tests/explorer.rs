//! Core explorer properties: exhaustive enumeration, mutual exclusion,
//! deadlock detection, preemption bounding, determinism of schedule counts,
//! and the lock-order audit.

use provabs_sched as sched;
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Arc, Mutex};
use sched::Config;

/// Two independent single-op threads: the sleep-set reduction must collapse
/// the two interleavings of commuting ops down to one schedule.
#[test]
fn independent_ops_collapse_to_one_schedule() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let a = Arc::new(AtomicU64::labeled("a", 0));
        let b = Arc::new(AtomicU64::labeled("b", 0));
        let a2 = Arc::clone(&a);
        let t = sched::thread::spawn(move || {
            a2.store(1, Ordering::SeqCst);
        });
        b.store(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
    });
    outcome.expect_clean();
    // Stores to different objects commute: at most one completed schedule
    // per genuinely distinct state, and nothing pruned both ways.
    assert_eq!(outcome.schedules, 1, "outcome: {outcome:?}");
}

/// Two conflicting stores do not commute: both orders must be explored.
#[test]
fn conflicting_ops_fork_the_tree() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let a = Arc::new(AtomicU64::labeled("a", 0));
        let a2 = Arc::clone(&a);
        let t = sched::thread::spawn(move || {
            a2.store(1, Ordering::SeqCst);
        });
        a.store(2, Ordering::SeqCst);
        t.join().unwrap();
        let v = a.load(Ordering::SeqCst);
        assert!(v == 1 || v == 2);
    });
    outcome.expect_clean();
    assert!(outcome.schedules >= 2, "outcome: {outcome:?}");
}

/// The canonical torn-counter race: a load/store increment racing a
/// fetch_add must lose an update in some schedule.
#[test]
fn lost_update_is_caught_and_replays_identically() {
    let body = || {
        let counter = Arc::new(AtomicU64::labeled("counter", 0));
        let c2 = Arc::clone(&counter);
        let t = sched::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    let outcome = sched::explore_with(Config::unbounded(), body);
    let violation = outcome.violation.as_ref().expect("lost update not caught");
    assert!(violation.message.contains("lost update"));

    // Seed round-trip + byte-identical replay.
    let seed = violation.schedule.seed();
    let parsed = sched::Schedule::from_seed(&seed).expect("seed parses");
    assert_eq!(parsed, violation.schedule);
    let replayed = sched::replay(&parsed, body);
    assert_eq!(replayed.trace, violation.trace);
    assert_eq!(
        replayed.message.as_deref(),
        Some(violation.message.as_str())
    );
    assert_eq!(replayed.decisions, violation.schedule.choices.len() as u64);
}

/// Mutual exclusion of the instrumented mutex holds across every schedule:
/// a non-atomic read-modify-write under the lock never loses an update.
#[test]
fn mutex_grants_mutual_exclusion_in_every_schedule() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let cell = Arc::new(Mutex::labeled("cell", 0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&cell);
                sched::thread::spawn(move || {
                    let mut g = c.lock().expect("cell lock");
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.lock().expect("cell lock"), 2);
    });
    outcome.expect_clean();
    assert!(outcome.schedules >= 2, "both acquisition orders explored");
}

/// Classic ABBA deadlock: the checker must detect it, name the blocked
/// threads, and surface the lock-order cycle in the audit graph.
#[test]
fn abba_deadlock_is_detected_with_lock_order_cycle() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let a = Arc::new(Mutex::labeled("lock.a", ()));
        let b = Arc::new(Mutex::labeled("lock.b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = sched::thread::spawn(move || {
            let _ga = a2.lock().expect("a");
            let _gb = b2.lock().expect("b");
        });
        let _gb = b.lock().expect("b");
        let _ga = a.lock().expect("a");
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let v = outcome.violation.expect("deadlock not found");
    assert!(v.message.contains("deadlock"), "message: {}", v.message);
    let cycle = outcome_cycle_check(&outcome.lock_edges);
    assert!(cycle, "opposite-order acquisitions must form a cycle");
}

fn outcome_cycle_check(edges: &[(String, String)]) -> bool {
    edges.contains(&("lock.a".to_string(), "lock.b".to_string()))
        && edges.contains(&("lock.b".to_string(), "lock.a".to_string()))
}

/// A consistent lock hierarchy produces an acyclic audit graph.
#[test]
fn consistent_lock_order_has_no_cycle() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let a = Arc::new(Mutex::labeled("outer", ()));
        let b = Arc::new(Mutex::labeled("inner", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = sched::thread::spawn(move || {
            let _ga = a2.lock().expect("outer");
            let _gb = b2.lock().expect("inner");
        });
        {
            let _ga = a.lock().expect("outer");
            let _gb = b.lock().expect("inner");
        }
        t.join().unwrap();
    });
    outcome.expect_clean();
    assert!(outcome
        .lock_edges
        .contains(&("outer".to_string(), "inner".to_string())));
    assert!(outcome.lock_cycle().is_none());
}

/// Preemption bounding prunes schedules: bound 0 explores strictly fewer
/// schedules than the unbounded sweep on a conflicting workload, while
/// still visiting at least the non-preemptive ones.
#[test]
fn preemption_bound_cuts_the_tree() {
    fn body() {
        let a = Arc::new(AtomicU64::labeled("a", 0));
        let a2 = Arc::clone(&a);
        let t = sched::thread::spawn(move || {
            for _ in 0..3 {
                a2.fetch_add(1, Ordering::SeqCst);
            }
        });
        for _ in 0..3 {
            a.fetch_add(1, Ordering::SeqCst);
        }
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 6);
    }
    let unbounded = sched::explore_with(Config::unbounded(), body);
    let bounded = sched::explore_with(
        Config {
            preemption_bound: Some(0),
            ..Config::default()
        },
        body,
    );
    unbounded.expect_clean();
    bounded.expect_clean();
    assert!(
        bounded.schedules < unbounded.schedules,
        "bound 0: {} vs unbounded: {}",
        bounded.schedules,
        unbounded.schedules
    );
    assert!(bounded.schedules >= 1);
}

/// Schedule counts are deterministic: two sweeps of the same scenario
/// agree exactly on every counter.
#[test]
fn sweep_counters_are_deterministic() {
    fn body() {
        let m = Arc::new(Mutex::labeled("m", 0u64));
        let c = Arc::new(AtomicU64::labeled("c", 0));
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        let t = sched::thread::spawn(move || {
            *m2.lock().expect("m") += 1;
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        *m.lock().expect("m") += 1;
        t.join().unwrap();
        assert_eq!(*m.lock().expect("m"), 2);
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }
    let a = sched::explore_with(Config::default(), body);
    let b = sched::explore_with(Config::default(), body);
    a.expect_clean();
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.lock_edges, b.lock_edges);
}

/// Three threads with mixed ops sweep exhaustively in CI time, and the
/// invariant (mutex-protected counter equals atomic counter) holds in every
/// schedule.
#[test]
fn three_thread_mixed_sweep_is_exhaustive() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let m = Arc::new(Mutex::labeled("total", 0u64));
        let published = Arc::new(AtomicU64::labeled("published", 0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m2 = Arc::clone(&m);
                let p2 = Arc::clone(&published);
                sched::thread::spawn(move || {
                    {
                        let mut g = m2.lock().expect("total");
                        *g += 1;
                    }
                    p2.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // The root thread is the "reader": published never exceeds total.
        let p = published.load(Ordering::SeqCst);
        let t = *m.lock().expect("total");
        assert!(p <= t, "published {p} > total {t}");
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().expect("total"), 2);
        assert_eq!(published.load(Ordering::SeqCst), 2);
    });
    outcome.expect_clean();
    assert!(outcome.schedules >= 4, "outcome: {outcome:?}");
}

/// Outside a model-checked execution the shims are plain std primitives.
#[test]
fn passthrough_mode_works_without_explorer() {
    let m = Mutex::new(1u64);
    *m.lock().expect("lock") += 1;
    assert_eq!(*m.lock().expect("lock"), 2);
    let a = AtomicU64::new(5);
    assert_eq!(a.fetch_add(1, Ordering::Relaxed), 5);
    assert_eq!(a.load(Ordering::Acquire), 6);
    let t = sched::thread::spawn(|| 41 + 1);
    assert_eq!(t.join().unwrap(), 42);
}

/// A schedule that exceeds the per-schedule step budget is reported as a
/// violation (fail-closed), not silently truncated.
#[test]
fn step_budget_overrun_is_a_violation() {
    let outcome = sched::explore_with(
        Config {
            max_steps: 8,
            ..Config::default()
        },
        || {
            let a = Arc::new(AtomicU64::labeled("spin", 0));
            for _ in 0..32 {
                a.fetch_add(1, Ordering::SeqCst);
            }
        },
    );
    let v = outcome.violation.expect("budget overrun not reported");
    assert!(v.message.contains("max_steps"), "message: {}", v.message);
}
