//! Quickstart: build a database, run a query with provenance tracking,
//! abstract the provenance to a target privacy level, and inspect the
//! result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use provabs::core::loi::LoiDistribution;
use provabs::core::privacy::PrivacyConfig;
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::{Abstraction, Bound};
use provabs::relational::{eval_cq, parse_cq, Database, KExample};
use provabs::tree::TreeBuilder;

fn main() {
    // 1. An annotated database: every tuple carries a distinct annotation.
    let mut db = Database::new();
    let employees = db.add_relation("Employee", &["eid", "dept", "city"]);
    let sales = db.add_relation("Sale", &["eid", "product"]);
    for (annot, row) in [
        ("e1", ["1", "Retail", "Paris"]),
        ("e2", ["2", "Retail", "Lyon"]),
        ("e3", ["3", "Support", "Paris"]),
        ("e4", ["4", "Retail", "Nice"]),
    ] {
        db.insert_str(employees, annot, &row);
    }
    for (annot, row) in [
        ("s1", ["1", "Laptop"]),
        ("s2", ["2", "Laptop"]),
        ("s3", ["3", "Phone"]),
        ("s4", ["4", "Phone"]),
    ] {
        db.insert_str(sales, annot, &row);
    }
    db.build_indexes();

    // 2. The confidential query: retail employees who sold laptops.
    let query = parse_cq(
        "Q(eid) :- Employee(eid, 'Retail', city), Sale(eid, 'Laptop')",
        db.schema(),
    )
    .unwrap();
    let output = eval_cq(&db, &query);
    println!("query output ({} rows):", output.len());
    for (tuple, prov) in output.iter() {
        println!("  {tuple}  |  {}", prov.to_string_with(db.annotations()));
    }

    // 3. An abstraction tree grouping annotations into categories.
    let root = db.intern_label("all");
    let emp_cat = db.intern_label("employees");
    let sale_cat = db.intern_label("sales");
    let mut builder = TreeBuilder::new(root);
    builder.add_child(root, emp_cat);
    builder.add_child(root, sale_cat);
    for e in ["e1", "e2", "e3", "e4"] {
        builder.add_child(emp_cat, db.annotations().get(e).unwrap());
    }
    for s in ["s1", "s2", "s3", "s4"] {
        builder.add_child(sale_cat, db.annotations().get(s).unwrap());
    }
    let tree = builder.build();

    // 4. The K-example to publish: both output rows with their provenance.
    let example = KExample::from_krelation(&output, 2);
    let bound = Bound::new(&db, &tree, &example).unwrap();

    // 5. Identity abstraction reveals the query (privacy 1); ask Algorithm 2
    //    for the cheapest abstraction with privacy >= 2.
    let identity = Abstraction::identity(&bound);
    println!(
        "\nidentity abstraction: LOI = {:.3}",
        provabs::core::loi::loss_of_information(&bound, &identity, &LoiDistribution::Uniform)
    );
    let cfg = SearchConfig {
        privacy: PrivacyConfig {
            threshold: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    match find_optimal_abstraction(&bound, &cfg).best {
        Some(best) => {
            println!(
                "optimal abstraction: privacy={} LOI={:.3} edges={}",
                best.privacy, best.loi, best.edges_used
            );
            let abstracted = best.abstraction.apply(&bound);
            println!("published K-example:");
            println!("{}", abstracted.to_string_with(&bound, db.annotations()));
        }
        None => println!("no abstraction reaches privacy 2 on this tree"),
    }
}
