//! The paper's running example, end to end (Figures 1–6, Tables 1 and 3).
//!
//! An advertising company matches ads to people who like dancing and music
//! (`Qreal`). Brenda asks why she was shown the ad; the company wants the
//! explanation (provenance) to stay useful without revealing `Qreal`.
//!
//! ```text
//! cargo run --example ad_targeting
//! ```

use provabs::core::compression::compression_baseline;
use provabs::core::dual::{find_max_privacy_abstraction, DualConfig};
use provabs::core::loi::LoiDistribution;
use provabs::core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::{fixtures, Abstraction, Bound};

fn main() {
    let fx = fixtures::running_example();
    let reg = fx.db.annotations();
    println!("database: Figure 1 (Interests / Hobbies / Person)");
    println!("hidden query Qreal: {}", fx.qreal.display(fx.db.schema()));
    println!(
        "\nK-example Exreal (Figure 2a):\n{}",
        fx.exreal.to_string_with(reg)
    );
    println!(
        "\nabstraction tree (Figure 3):\n{}",
        fx.tree.to_string_with(reg)
    );

    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();

    // Privacy of the raw provenance: the query is exposed.
    let cache = PrivacyCache::new();
    let cfg1 = PrivacyConfig {
        threshold: 1,
        ..Default::default()
    };
    let identity_rows = Abstraction::identity(&bound).apply(&bound).rows;
    let raw = compute_privacy(&bound, &identity_rows, &cfg1, &cache);
    println!("raw provenance privacy: {:?}", raw.privacy);
    for q in &raw.cim {
        println!(
            "  the only CIM query IS the hidden query: {}",
            q.display(fx.db.schema())
        );
    }

    // Example 3.15: the optimal abstraction for threshold 2 is A1_T.
    let search = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let best = search.best.expect("Example 3.15 abstraction");
    println!(
        "\noptimal abstraction for k=2 (Example 3.15): privacy={} LOI={:.3} (= ln 15 = {:.3})",
        best.privacy,
        best.loi,
        15f64.ln()
    );
    println!(
        "published, abstracted K-example (Exabs1, Figure 5):\n{}",
        best.abstraction.apply(&bound).to_string_with(&bound, reg)
    );

    // The dual problem: best privacy under an information budget.
    let dual = find_max_privacy_abstraction(
        &bound,
        &DualConfig {
            l_max: 3.2,
            ..Default::default()
        },
    );
    if let Some(d) = dual.best {
        println!(
            "\ndual problem (budget LOI <= 3.2): privacy={} at LOI={:.3}",
            d.privacy, d.loi
        );
    }

    // The compression baseline of [24] pays more information for the same
    // privacy (Figure 18's effect on one example).
    let comp = compression_baseline(
        &bound,
        &PrivacyConfig {
            threshold: 2,
            ..Default::default()
        },
        &LoiDistribution::Uniform,
    );
    if let Some(cb) = comp.best {
        println!(
            "\ncompression baseline [24] at k=2: LOI={:.3} vs ours {:.3} ({:.2}x)",
            cb.loi,
            best.loi,
            cb.loi / best.loi
        );
    }
}
