//! Aggregate provenance (§3.4): abstracting semimodule tensors.
//!
//! The MAX-age variant of the running example: the query returns the
//! maximal age of people who like dancing and music; its provenance is
//! `(p1*h1*i1) ⊗ 27 +MAX (p2*h2*i2) ⊗ 31`. Abstraction acts on the
//! annotation parts and leaves the values intact.
//!
//! ```text
//! cargo run --example aggregates
//! ```

use provabs::core::fixtures;
use provabs::semiring::{AggOp, AggValue, Monomial};

fn main() {
    let fx = fixtures::running_example();
    let reg = fx.db.annotations();
    let a = |n: &str| reg.get(n).unwrap();

    // Build the §3.4 aggregate value.
    let mut agg = AggValue::new(AggOp::Max);
    agg.push(Monomial::from_annots([a("p1"), a("h1"), a("i1")]), 27);
    agg.push(Monomial::from_annots([a("p2"), a("h2"), a("i2")]), 31);
    println!("aggregate provenance: {}", agg.to_string_with(reg));
    println!("MAX age = {}", agg.evaluate());

    // Hypothetical deletion: drop Brenda's hobby tuple h2.
    let h2 = a("h2");
    println!(
        "after deleting h2: MAX age = {:?}",
        agg.evaluate_after_deletion(&|x| x == h2)
    );

    // Apply the A1_T abstraction on the annotation part (h1 -> Facebook,
    // h2 -> LinkedIn), as in the paper's §3.4 example.
    let fb = a("Facebook_src");
    let li = a("LinkedIn_src");
    let h1 = a("h1");
    let abstracted = agg.map_monomials(|m| {
        Monomial::from_annots(m.occurrences().into_iter().map(|x| {
            if x == h1 {
                fb
            } else if x == h2 {
                li
            } else {
                x
            }
        }))
    });
    println!("abstracted aggregate: {}", abstracted.to_string_with(reg));
    assert_eq!(abstracted.evaluate(), 31); // values untouched
}
