//! A TPC-H-style audit scenario: a retailer must explain which order lines
//! drove a flagged result without revealing its (proprietary) audit query.
//!
//! Generates a miniature TPC-H database, runs the Q10-style audit query,
//! builds the §5.1 lineitem abstraction tree, and publishes an abstracted
//! K-example at privacy 5.
//!
//! ```text
//! cargo run --release --example tpch_audit
//! ```

use provabs::core::privacy::PrivacyConfig;
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::Bound;
use provabs::datagen::kexample_for;
use provabs::datagen::tpch::{self, TpchConfig};

fn main() {
    let cfg = TpchConfig {
        lineitem_rows: 2_000,
        seed: 42,
    };
    let (db_proto, rels) = tpch::generate(&cfg);
    println!(
        "TPC-H mini-dbgen: {} tuples across {} relations",
        db_proto.len(),
        db_proto.schema().len()
    );
    let audit = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q10")
        .expect("Q10");
    println!(
        "audit query (hidden): {}",
        audit.query.display(db_proto.schema())
    );

    let mut db = db_proto;
    let example = kexample_for(&db, &audit.query, 2).expect("two audit rows");
    println!(
        "\nexplanations to publish:\n{}",
        example.to_string_with(db.annotations())
    );

    let tree = tpch::tpch_tree_covering(&mut db, &rels, &example, 800, 5, 42, false);
    println!(
        "\nabstraction tree: {} leaves, height {}",
        tree.num_leaves(),
        tree.height()
    );

    let bound = Bound::new(&db, &tree, &example).unwrap();
    let search = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 5,
                ..Default::default()
            },
            time_budget_ms: Some(10_000),
            ..Default::default()
        },
    );
    match search.best {
        Some(best) => {
            println!(
                "\npublishable abstraction: privacy={} (>= 5) LOI={:.3} edges={}",
                best.privacy, best.loi, best.edges_used
            );
            println!(
                "abstracted explanations:\n{}",
                best.abstraction
                    .apply(&bound)
                    .to_string_with(&bound, db.annotations())
            );
            println!(
                "\nsearch stats: {} abstractions enumerated, {} privacy evaluations",
                search.stats.abstractions_enumerated, search.stats.privacy_evaluations
            );
        }
        None => println!("no abstraction met the threshold within the budget"),
    }
}
