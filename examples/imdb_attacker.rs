//! Attacker's view: how much does abstracted provenance reveal?
//!
//! Plays both sides on an IMDB-style dataset: the publisher releases the
//! provenance of the "bacon number 1" query (IMDB-Q3) either raw or
//! abstracted; the attacker reverse-engineers the candidate CIM queries and
//! tries to pin the original.
//!
//! ```text
//! cargo run --release --example imdb_attacker
//! ```

use provabs::core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::{Abstraction, Bound};
use provabs::datagen::imdb::{self, ImdbConfig};
use provabs::datagen::kexample_for;
use provabs::reveng::{find_consistent_queries, RevOptions};

fn main() {
    let (db_proto, rels) = imdb::generate(&ImdbConfig::default());
    let q3 = imdb::imdb_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "IMDB-Q3")
        .expect("IMDB-Q3");
    let mut db = db_proto;
    let example = kexample_for(&db, &q3.query, 2).expect("two rows");
    let tree = imdb::imdb_tree(&mut db, &rels);
    let bound = Bound::new(&db, &tree, &example).unwrap();

    println!("hidden query: {}", q3.query.display(db.schema()));
    println!(
        "\npublished raw provenance:\n{}",
        example.to_string_with(db.annotations())
    );

    // --- Attacker vs raw provenance.
    let rows = example.resolve(&db).unwrap();
    let frontier = find_consistent_queries(&rows, &RevOptions::default());
    println!(
        "\nattacker on RAW provenance reconstructs {} candidate(s):",
        frontier.len()
    );
    for q in &frontier {
        println!("  {}", q.display(db.schema()));
    }

    // --- Publisher abstracts to privacy >= 2.
    let search = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            time_budget_ms: Some(15_000),
            ..Default::default()
        },
    );
    let Some(best) = search.best else {
        println!("\n(no abstraction met the threshold within the budget)");
        return;
    };
    let abstracted = best.abstraction.apply(&bound);
    println!(
        "\npublished ABSTRACTED provenance (LOI {:.2}):\n{}",
        best.loi,
        abstracted.to_string_with(&bound, db.annotations())
    );

    // --- Attacker vs abstracted provenance: every CIM query is a plausible
    // hidden query; the attacker cannot tell which one is real.
    let cache = PrivacyCache::new();
    let outcome = compute_privacy(
        &bound,
        &abstracted.rows,
        &PrivacyConfig {
            threshold: 1,
            ..Default::default()
        },
        &cache,
    );
    println!(
        "\nattacker on abstracted provenance faces {} indistinguishable CIM queries:",
        outcome.privacy.unwrap_or(0)
    );
    for q in outcome.cim.iter().take(6) {
        println!("  {}", q.display(db.schema()));
    }
    let identity = Abstraction::identity(&bound);
    assert_eq!(identity.edges_used(), 0); // sanity: raw = identity abstraction
}
