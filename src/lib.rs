//! # provabs — privacy/utility trade-off optimization for data provenance
//!
//! A Rust implementation of *"On Optimizing the Trade-off between Privacy
//! and Utility in Data Provenance"* (Deutch, Frankenthal, Gilad, Moskovitch —
//! SIGMOD 2021), including every substrate the paper relies on:
//!
//! * [`semiring`] — provenance polynomials (`N[X]`), the coarser provenance
//!   semirings, aggregate semimodules;
//! * [`relational`] — annotated databases, CQ/UCQ queries and parser,
//!   provenance-tracking evaluation, K-examples;
//! * [`tree`] — provenance abstraction trees;
//! * [`reveng`] — reverse-engineering consistent queries from provenance,
//!   containment orders, CIM extraction;
//! * [`core`] — the paper's contribution: abstraction functions,
//!   concretizations, loss of information, privacy (Algorithm 1), optimal
//!   abstraction search (Algorithm 2), the dual problem, and the
//!   compression baseline of \[24\];
//! * [`datagen`] — synthetic TPC-H / IMDB generators and the paper's
//!   workload queries.
//!
//! # Quickstart
//!
//! ```
//! use provabs::core::{fixtures, search::{find_optimal_abstraction, SearchConfig}};
//! use provabs::core::privacy::PrivacyConfig;
//!
//! // The paper's running example: an advertising database, the Figure 3
//! // abstraction tree, and the output of the confidential query Qreal.
//! let fx = fixtures::running_example();
//! let bound = provabs::core::Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
//!
//! // Find the cheapest abstraction with privacy >= 2 (Example 3.15).
//! let cfg = SearchConfig {
//!     privacy: PrivacyConfig { threshold: 2, ..Default::default() },
//!     ..Default::default()
//! };
//! let best = find_optimal_abstraction(&bound, &cfg).best.unwrap();
//! assert_eq!(best.privacy, 2);
//! assert!((best.loi - 15f64.ln()).abs() < 1e-9); // ln |C| = ln 15
//! ```
//!
//! # Maintaining results under updates
//!
//! Cached provenance survives database churn through delta maintenance
//! (the README's churn quickstart, verified here):
//!
//! ```
//! use provabs::relational::{
//!     apply_delta_with_queries, eval_cq, parse_cq, Database, Delta, Tuple,
//! };
//!
//! let mut db = Database::new();
//! let r = db.add_relation("R", &["a", "b"]);
//! let s = db.add_relation("S", &["b"]);
//! db.insert_str(r, "r1", &["1", "10"]);
//! db.insert_str(s, "s1", &["10"]);
//! db.build_indexes();
//! let q = parse_cq("Q(x) :- R(x, y), S(y)", db.schema()).unwrap();
//! let mut cached = eval_cq(&db, &q);
//!
//! let mut delta = Delta::new();
//! delta.insert(r, "r2", Tuple::parse(&["2", "10"]));
//! delta.delete(db.annotations().get("s1").unwrap());
//!
//! let out = apply_delta_with_queries(&mut db, &delta, std::slice::from_ref(&q));
//! assert!(out.deltas[0].merge_into(&mut cached));
//! assert_eq!(cached, eval_cq(&db, &q)); // bit-for-bit equal to re-eval
//! ```

#![forbid(unsafe_code)]

pub use provabs_core as core;
pub use provabs_datagen as datagen;
pub use provabs_relational as relational;
pub use provabs_reveng as reveng;
pub use provabs_semiring as semiring;
pub use provabs_tree as tree;
