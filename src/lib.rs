//! # provabs — privacy/utility trade-off optimization for data provenance
//!
//! A Rust implementation of *"On Optimizing the Trade-off between Privacy
//! and Utility in Data Provenance"* (Deutch, Frankenthal, Gilad, Moskovitch —
//! SIGMOD 2021), including every substrate the paper relies on:
//!
//! * [`semiring`] — provenance polynomials (`N[X]`), the coarser provenance
//!   semirings, aggregate semimodules;
//! * [`relational`] — annotated databases, CQ/UCQ queries and parser,
//!   provenance-tracking evaluation, K-examples;
//! * [`tree`] — provenance abstraction trees;
//! * [`reveng`] — reverse-engineering consistent queries from provenance,
//!   containment orders, CIM extraction;
//! * [`core`] — the paper's contribution: abstraction functions,
//!   concretizations, loss of information, privacy (Algorithm 1), optimal
//!   abstraction search (Algorithm 2), the dual problem, and the
//!   compression baseline of \[24\];
//! * [`datagen`] — synthetic TPC-H / IMDB generators and the paper's
//!   workload queries.
//!
//! # Quickstart
//!
//! ```
//! use provabs::core::{fixtures, search::{find_optimal_abstraction, SearchConfig}};
//! use provabs::core::privacy::PrivacyConfig;
//!
//! // The paper's running example: an advertising database, the Figure 3
//! // abstraction tree, and the output of the confidential query Qreal.
//! let fx = fixtures::running_example();
//! let bound = provabs::core::Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
//!
//! // Find the cheapest abstraction with privacy >= 2 (Example 3.15).
//! let cfg = SearchConfig {
//!     privacy: PrivacyConfig { threshold: 2, ..Default::default() },
//!     ..Default::default()
//! };
//! let best = find_optimal_abstraction(&bound, &cfg).best.unwrap();
//! assert_eq!(best.privacy, 2);
//! assert!((best.loi - 15f64.ln()).abs() < 1e-9); // ln |C| = ln 15
//! ```

#![forbid(unsafe_code)]

pub use provabs_core as core;
pub use provabs_datagen as datagen;
pub use provabs_relational as relational;
pub use provabs_reveng as reveng;
pub use provabs_semiring as semiring;
pub use provabs_tree as tree;
